//! Max-min fair-share bandwidth allocation (progressive filling).
//!
//! Given the set of active flows (each a list of links it crosses) and the
//! current per-link capacities, the allocator answers: *what rate does each
//! flow get right now?* It implements the classic water-filling scheme from
//! the flow-level simulation tradition (SimGrid lineage, PAPERS.md): find
//! the most contended link, freeze every flow crossing it at that link's
//! fair share, subtract what they consume everywhere, repeat.
//!
//! The computation is pure and deterministic: links are scanned in id order
//! and ties break toward the lowest id, so equal inputs produce bit-equal
//! rates — the property the scenario determinism gates rely on.

use crate::topology::LinkId;

/// Tolerance for "capacity exhausted" comparisons, bytes/sec.
const CAP_EPS: f64 = 1e-9;

/// Computes max-min fair rates (bytes/sec) for `flows`, where each flow is
/// the list of links it crosses and `capacity[l]` is the current capacity of
/// link `l`. Flows crossing a zero-capacity (cut) link get rate `0.0`.
///
/// Every flow must cross at least one link; node-local transfers never reach
/// the allocator.
pub fn max_min_rates(flows: &[Vec<LinkId>], capacity: &[f64]) -> Vec<f64> {
    let mut rates = vec![0.0f64; flows.len()];
    if flows.is_empty() {
        return rates;
    }
    let mut remaining: Vec<f64> = capacity.to_vec();
    let mut load = vec![0u32; capacity.len()];
    for path in flows {
        debug_assert!(!path.is_empty(), "node-local flows must not be allocated");
        for &l in path {
            load[l as usize] += 1;
        }
    }
    let mut frozen = vec![false; flows.len()];
    let mut unfrozen = flows.len();

    while unfrozen > 0 {
        // The bottleneck: the loaded link offering the smallest fair share.
        let mut bottleneck = usize::MAX;
        let mut share = f64::INFINITY;
        for (l, &n) in load.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let s = (remaining[l].max(0.0)) / f64::from(n);
            if s < share {
                share = s;
                bottleneck = l;
            }
        }
        if bottleneck == usize::MAX {
            break; // no loaded links left (all paths drained)
        }
        // Freeze every unfrozen flow crossing the bottleneck at `share` and
        // charge its consumption to every link it touches.
        for (i, path) in flows.iter().enumerate() {
            if frozen[i] || !path.contains(&(bottleneck as LinkId)) {
                continue;
            }
            rates[i] = share;
            frozen[i] = true;
            unfrozen -= 1;
            for &l in path {
                let li = l as usize;
                remaining[li] = (remaining[li] - share).max(0.0);
                load[li] -= 1;
            }
        }
        // The bottleneck is exhausted for anyone still crossing it.
        if remaining[bottleneck] < CAP_EPS {
            remaining[bottleneck] = 0.0;
        }
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_gets_path_bottleneck() {
        let rates = max_min_rates(&[vec![0, 2]], &[100.0, 400.0, 40.0]);
        assert_eq!(rates, vec![40.0]);
    }

    #[test]
    fn equal_flows_split_a_shared_link_evenly() {
        let flows = vec![vec![0], vec![0], vec![0], vec![0]];
        let rates = max_min_rates(&flows, &[100.0]);
        assert!(rates.iter().all(|&r| (r - 25.0).abs() < 1e-9), "{rates:?}");
    }

    #[test]
    fn water_filling_gives_leftover_to_unconstrained_flows() {
        // Flow 0 crosses links 0 and 1; flow 1 crosses only link 1.
        // Link 0 (cap 10) bottlenecks flow 0 at 10; flow 1 then gets the
        // remaining 90 of link 1 — not a naive 50/50 split.
        let flows = vec![vec![0, 1], vec![1]];
        let rates = max_min_rates(&flows, &[10.0, 100.0]);
        assert!((rates[0] - 10.0).abs() < 1e-9, "{rates:?}");
        assert!((rates[1] - 90.0).abs() < 1e-9, "{rates:?}");
    }

    #[test]
    fn cut_links_starve_their_flows_only() {
        let flows = vec![vec![0], vec![1]];
        let rates = max_min_rates(&flows, &[0.0, 50.0]);
        assert_eq!(rates[0], 0.0);
        assert!((rates[1] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_is_oversubscribed() {
        // A dense cross-traffic pattern over a small fabric.
        let caps = [30.0, 20.0, 10.0, 25.0];
        let flows = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![0, 3],
            vec![0, 1, 2, 3],
            vec![3],
        ];
        let rates = max_min_rates(&flows, &caps);
        for (l, &cap) in caps.iter().enumerate() {
            let used: f64 = flows
                .iter()
                .zip(&rates)
                .filter(|(path, _)| path.contains(&(l as LinkId)))
                .map(|(_, &r)| r)
                .sum();
            assert!(used <= cap + 1e-6, "link {l}: {used} > {cap}");
        }
        // Work conservation: with all-positive capacities every flow moves.
        assert!(rates.iter().all(|&r| r > 0.0), "{rates:?}");
    }

    #[test]
    fn deterministic_for_equal_inputs() {
        let flows = vec![vec![0, 2], vec![1, 2], vec![0, 1]];
        let caps = [17.0, 23.0, 11.0];
        assert_eq!(max_min_rates(&flows, &caps), max_min_rates(&flows, &caps));
    }
}
