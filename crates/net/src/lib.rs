//! # mcs-net — the network as a first-class resource
//!
//! The paper's ecosystem pitch (C4 heterogeneity, the RM&S challenges)
//! treats communication as a scarce *shared* resource, yet most simulators —
//! and, until this crate, this workspace — model transfers as fixed delays:
//! a shuffle takes `bytes / nominal_bandwidth` no matter what else is on the
//! wire, and a "partition" is a time window rather than a hole in the
//! fabric. `mcs-net` replaces that with a deterministic **flow-level
//! network model** in the SimGrid tradition:
//!
//! - [`topology::NetTopology`] — a two-tier rack/spine fabric with per-link
//!   capacity and latency; partitions cut a node's access link, gray
//!   failures degrade it (both reference-counted).
//! - [`flow::max_min_rates`] — max-min fair-share bandwidth allocation by
//!   progressive filling, recomputed on every flow start/finish and fault.
//! - [`actor::NetActor`] — the model as an [`Actor`] on the shared
//!   [`Simulation`]: tenants send [`actor::NetMsg::Transfer`] requests
//!   tagged with their identity, and a scenario-installed completion hook
//!   routes each [`actor::FlowDone`] back to the owning subsystem.
//!
//! Transfer times are *emergent*: a bigdata shuffle, a FaaS invocation
//! payload, an RMS checkpoint restore, and a gaming state-sync burst that
//! cross the same uplink slow each other down, and every flow records its
//! stall (actual minus uncontended-ideal seconds) on the trace bus.
//!
//! ```
//! use mcs_net::prelude::*;
//! use mcs_simcore::engine::Simulation;
//! use mcs_simcore::time::{SimDuration, SimTime};
//!
//! const MB: f64 = 1024.0 * 1024.0;
//! let topo = NetTopology::new(
//!     8, 4, 100.0 * MB, 400.0 * MB,
//!     SimDuration::from_micros(500), SimDuration::from_millis(2),
//! );
//! let mut sim: Simulation<'_, NetMsg> = Simulation::new(42);
//! let net = sim.add_actor(NetActor::new(topo));
//! sim.schedule(SimTime::ZERO, net, NetMsg::Transfer(TransferReq {
//!     src: 0, dst: 5, bytes: (64.0 * MB) as u64,
//!     tag: FlowTag { owner: FlowOwner::Test, id: 0 },
//! }));
//! sim.run();
//! assert_eq!(sim.trace().count("net", "flow_end"), 1);
//! ```
//!
//! [`Actor`]: mcs_simcore::engine::Actor
//! [`Simulation`]: mcs_simcore::engine::Simulation

pub mod actor;
pub mod flow;
pub mod topology;

pub use actor::{
    CompletionHook, FlowDone, FlowOwner, FlowTag, NetActor, NetFault, NetMsg, TransferReq,
    NET_COMPONENT,
};
pub use flow::max_min_rates;
pub use topology::{LinkId, NetTopology};

/// Convenient glob-import surface: `use mcs_net::prelude::*;`.
pub mod prelude {
    pub use crate::actor::{FlowDone, FlowOwner, FlowTag, NetActor, NetFault, NetMsg, TransferReq};
    pub use crate::topology::NetTopology;
}
