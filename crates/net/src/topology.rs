//! Rack/zone datacenter topology for the flow-level network model.
//!
//! The topology is the two-tier fabric common to the ecosystems the paper
//! surveys (Fig. 1 storage/compute stacks, Fig. 4 gaming zones): every node
//! hangs off its rack switch through an *access link*, and every rack switch
//! reaches the (non-blocking) spine through an *uplink*. A transfer therefore
//! crosses at most four capacity-constrained links:
//!
//! ```text
//!   src ──access──▶ rack(src) ──uplink──▶ spine ──uplink──▶ rack(dst) ──access──▶ dst
//! ```
//!
//! Same-rack transfers touch only the two access links; same-node transfers
//! touch no link at all (they pay latency only). Faults are applied to
//! *nodes*: a partition cuts the node's access link, a gray failure scales
//! its capacity. Both are reference-counted so overlapping fault windows
//! compose and unwind exactly.

use mcs_simcore::time::SimDuration;

/// Index of a capacity-constrained link in the fabric.
pub type LinkId = u32;

/// A two-tier (node → rack → spine) topology with per-link capacities.
///
/// Link ids `0..nodes` are node access links; `nodes..nodes + racks` are
/// rack uplinks.
#[derive(Debug, Clone)]
pub struct NetTopology {
    nodes: u32,
    nodes_per_rack: u32,
    racks: u32,
    /// Nominal capacity per link, bytes/sec.
    base_capacity: Vec<f64>,
    /// Active partition count per link (capacity is zero while > 0).
    cuts: Vec<u32>,
    /// Active degradation factors per link (capacity is scaled by their
    /// product). Stored individually so overlapping windows unwind exactly,
    /// without float drift from multiply-then-divide.
    degrades: Vec<Vec<f64>>,
    same_rack_latency: SimDuration,
    cross_rack_latency: SimDuration,
}

impl NetTopology {
    /// Builds a fabric of `nodes` machines in racks of `nodes_per_rack`,
    /// with `node_bps` bytes/sec access links and `rack_bps` bytes/sec
    /// rack uplinks.
    ///
    /// # Panics
    /// Panics if `nodes` or `nodes_per_rack` is zero — a machine without an
    /// access link is unreachable by construction. [`Scenario`] validates
    /// these before building (`McsError::InvalidConfig`).
    ///
    /// [`Scenario`]: https://docs.rs/mcs-core
    pub fn new(
        nodes: u32,
        nodes_per_rack: u32,
        node_bps: f64,
        rack_bps: f64,
        same_rack_latency: SimDuration,
        cross_rack_latency: SimDuration,
    ) -> Self {
        assert!(nodes > 0, "topology needs at least one node");
        assert!(nodes_per_rack > 0, "racks need at least one node");
        let racks = nodes.div_ceil(nodes_per_rack);
        let mut base_capacity = vec![node_bps; nodes as usize];
        base_capacity.extend(std::iter::repeat_n(rack_bps, racks as usize));
        let links = base_capacity.len();
        NetTopology {
            nodes,
            nodes_per_rack,
            racks,
            base_capacity,
            cuts: vec![0; links],
            degrades: vec![Vec::new(); links],
            same_rack_latency,
            cross_rack_latency,
        }
    }

    /// Number of nodes (machines) in the fabric.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of racks.
    pub fn racks(&self) -> u32 {
        self.racks
    }

    /// Total number of capacity-constrained links.
    pub fn links(&self) -> usize {
        self.base_capacity.len()
    }

    /// Rack containing `node`.
    pub fn rack_of(&self, node: u32) -> u32 {
        node / self.nodes_per_rack
    }

    fn access(&self, node: u32) -> LinkId {
        debug_assert!(node < self.nodes);
        node
    }

    fn uplink(&self, rack: u32) -> LinkId {
        self.nodes + rack
    }

    /// The capacity-constrained links crossed by a `src → dst` transfer.
    /// Empty when `src == dst`: node-local copies pay latency only.
    pub fn path(&self, src: u32, dst: u32) -> Vec<LinkId> {
        if src == dst {
            return Vec::new();
        }
        let (sr, dr) = (self.rack_of(src), self.rack_of(dst));
        if sr == dr {
            vec![self.access(src), self.access(dst)]
        } else {
            vec![self.access(src), self.uplink(sr), self.uplink(dr), self.access(dst)]
        }
    }

    /// Propagation latency of a `src → dst` transfer.
    pub fn latency(&self, src: u32, dst: u32) -> SimDuration {
        if src == dst {
            SimDuration::ZERO
        } else if self.rack_of(src) == self.rack_of(dst) {
            self.same_rack_latency
        } else {
            self.cross_rack_latency
        }
    }

    /// Nominal (fault-free) capacity of a link, bytes/sec.
    pub fn base_capacity(&self, link: LinkId) -> f64 {
        self.base_capacity[link as usize]
    }

    /// Current capacity of a link, bytes/sec: zero while cut, otherwise the
    /// nominal capacity scaled by every active degradation.
    pub fn effective_capacity(&self, link: LinkId) -> f64 {
        let i = link as usize;
        if self.cuts[i] > 0 {
            return 0.0;
        }
        self.degrades[i].iter().product::<f64>() * self.base_capacity[i]
    }

    /// Snapshot of every link's current capacity, in link-id order.
    pub fn effective_capacities(&self) -> Vec<f64> {
        (0..self.links()).map(|l| self.effective_capacity(l as LinkId)).collect()
    }

    /// The smallest nominal capacity along `src → dst` — the uncontended,
    /// fault-free bottleneck used for ideal-transfer-time accounting.
    pub fn base_bottleneck(&self, src: u32, dst: u32) -> f64 {
        self.path(src, dst)
            .iter()
            .map(|&l| self.base_capacity(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Partitions `node` off the fabric: its access link carries nothing
    /// until a matching [`NetTopology::restore_node`].
    pub fn cut_node(&mut self, node: u32) {
        let l = self.access(node) as usize;
        self.cuts[l] += 1;
    }

    /// Lifts one partition of `node`. Reference-counted: the link heals only
    /// when every overlapping cut has been restored.
    pub fn restore_node(&mut self, node: u32) {
        let l = self.access(node) as usize;
        self.cuts[l] = self.cuts[l].saturating_sub(1);
    }

    /// Scales `node`'s access capacity by `factor` (a gray failure) until a
    /// matching [`NetTopology::undegrade_node`].
    pub fn degrade_node(&mut self, node: u32, factor: f64) {
        let l = self.access(node) as usize;
        self.degrades[l].push(factor.clamp(0.0, 1.0));
    }

    /// Removes one active degradation of `node` with this `factor`.
    pub fn undegrade_node(&mut self, node: u32, factor: f64) {
        let l = self.access(node) as usize;
        let clamped = factor.clamp(0.0, 1.0);
        if let Some(pos) = self.degrades[l].iter().position(|&f| f == clamped) {
            self.degrades[l].remove(pos);
        }
    }

    /// True when every node can reach every other: each access link and
    /// each uplink has positive, finite nominal capacity. (The two-tier
    /// fabric is connected by construction *except* through a dead link.)
    pub fn is_connected(&self) -> bool {
        self.base_capacity.iter().all(|&c| c.is_finite() && c > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> NetTopology {
        NetTopology::new(
            8,
            4,
            100.0,
            400.0,
            SimDuration::from_micros(500),
            SimDuration::from_millis(2),
        )
    }

    #[test]
    fn link_layout_and_racks() {
        let t = topo();
        assert_eq!(t.racks(), 2);
        assert_eq!(t.links(), 10);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(4), 1);
        assert_eq!(t.base_capacity(0), 100.0);
        assert_eq!(t.base_capacity(8), 400.0);
    }

    #[test]
    fn paths_by_locality() {
        let t = topo();
        assert!(t.path(2, 2).is_empty());
        assert_eq!(t.path(0, 3), vec![0, 3]);
        assert_eq!(t.path(1, 6), vec![1, 8, 9, 6]);
        assert_eq!(t.latency(2, 2), SimDuration::ZERO);
        assert_eq!(t.latency(0, 3), SimDuration::from_micros(500));
        assert_eq!(t.latency(1, 6), SimDuration::from_millis(2));
    }

    #[test]
    fn ragged_last_rack() {
        let t = NetTopology::new(
            5,
            4,
            10.0,
            40.0,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(t.racks(), 2);
        assert_eq!(t.rack_of(4), 1);
    }

    #[test]
    fn cuts_are_reference_counted() {
        let mut t = topo();
        t.cut_node(3);
        t.cut_node(3);
        assert_eq!(t.effective_capacity(3), 0.0);
        t.restore_node(3);
        assert_eq!(t.effective_capacity(3), 0.0);
        t.restore_node(3);
        assert_eq!(t.effective_capacity(3), 100.0);
        t.restore_node(3); // over-restore is a no-op
        assert_eq!(t.effective_capacity(3), 100.0);
    }

    #[test]
    fn degrades_compose_and_unwind_exactly() {
        let mut t = topo();
        t.degrade_node(1, 0.5);
        t.degrade_node(1, 0.25);
        assert!((t.effective_capacity(1) - 12.5).abs() < 1e-9);
        t.undegrade_node(1, 0.5);
        assert!((t.effective_capacity(1) - 25.0).abs() < 1e-9);
        t.undegrade_node(1, 0.25);
        assert_eq!(t.effective_capacity(1), 100.0);
    }

    #[test]
    fn ideal_bottleneck_ignores_faults() {
        let mut t = topo();
        t.cut_node(0);
        assert_eq!(t.base_bottleneck(0, 5), 100.0);
        assert_eq!(t.base_bottleneck(0, 0), f64::INFINITY);
    }

    #[test]
    fn connectivity_requires_live_links() {
        assert!(topo().is_connected());
        let dead = NetTopology::new(
            4,
            2,
            0.0,
            40.0,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert!(!dead.is_connected());
    }
}
