//! The network as an actor on the shared simulation.
//!
//! [`NetActor`] owns a [`NetTopology`] and a set of *active flows*. Every
//! event that can change the bandwidth allocation — a flow starting, a flow
//! draining its last byte, a link being cut, degraded, or healed — advances
//! each flow's remaining bytes at its old rate, recomputes the max-min fair
//! shares, and reschedules the single pending completion event for the new
//! earliest finisher (cancel + re-send, the engine's retiming idiom). That
//! makes transfer times *emergent*: a shuffle that once took
//! `bytes / nominal_bandwidth` now takes however long its fair share allows
//! under whatever else the ecosystem is pushing through the same links.
//!
//! Tenants never talk to the topology directly. They send
//! [`NetMsg::Transfer`] with a [`FlowTag`] naming the owner, and the
//! scenario installs a completion hook that routes each [`FlowDone`] back to
//! the right actor — bigdata map/shuffle barriers, FaaS invocation
//! payloads, RMS checkpoint restores, gaming state sync.

use crate::flow::max_min_rates;
use crate::topology::{LinkId, NetTopology};
use mcs_simcore::engine::{Actor, Context, EventToken, MessageEnvelope};
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::Field;

/// Trace component under which all flow and link events are recorded.
pub const NET_COMPONENT: &str = "net";

/// Residual bytes below which a flow counts as drained (absorbs the ≤1 ns
/// quantization of completion scheduling).
const DRAIN_EPS: f64 = 0.5;

/// The subsystem that owns a flow. Typed (rather than a string) so routing
/// matches in completion hooks are exhaustive: a new tenant that forgets a
/// match arm is a compile error, not a silently dropped completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowOwner {
    /// FaaS invocation payload (gateway → worker).
    Faas,
    /// FaaS response payload (worker → gateway).
    FaasResp,
    /// RMS checkpoint restore.
    Rms,
    /// Bigdata map-input fetch.
    BdMap,
    /// Bigdata shuffle wave.
    BdShuffle,
    /// Gaming state-sync burst.
    Game,
    /// DAG workflow edge transfer (task output → dependent task input).
    Dag,
    /// Tests and documentation examples.
    Test,
}

impl FlowOwner {
    /// Stable wire name, used verbatim in trace `owner` fields.
    pub fn name(self) -> &'static str {
        match self {
            FlowOwner::Faas => "faas",
            FlowOwner::FaasResp => "faas-resp",
            FlowOwner::Rms => "rms",
            FlowOwner::BdMap => "bd-map",
            FlowOwner::BdShuffle => "bd-shuffle",
            FlowOwner::Game => "game",
            FlowOwner::Dag => "dag",
            FlowOwner::Test => "test",
        }
    }
}

/// Identifies who started a flow and which of their transfers it is; echoed
/// back verbatim on completion so the scenario can route the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTag {
    /// The owning subsystem.
    pub owner: FlowOwner,
    /// Owner-scoped transfer id (job index, invocation sequence, ...).
    pub id: u64,
}

/// A request to move `bytes` from node `src` to node `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferReq {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Completion-routing tag.
    pub tag: FlowTag,
}

/// A topology fault, as mapped from the failure model's `FaultKind`:
/// partitions cut a node's access link, gray failures degrade it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetFault {
    /// Cut `node`'s access link (a network partition).
    Cut {
        /// The partitioned node.
        node: u32,
    },
    /// Scale `node`'s access capacity by `factor` (a gray failure).
    Degrade {
        /// The degraded node.
        node: u32,
        /// Capacity multiplier in `[0, 1]`.
        factor: f64,
    },
}

/// Messages understood by [`NetActor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetMsg {
    /// Start a flow.
    Transfer(TransferReq),
    /// Self-scheduled: the predicted earliest flow completion.
    Complete,
    /// Self-scheduled: a drained flow has crossed its propagation latency
    /// and is delivered to the completion hook.
    Deliver(u64),
    /// Self-scheduled: the earliest stalled-flow abort deadline (only armed
    /// when a flow timeout is configured and some flow has rate zero).
    Abort,
    /// Apply a topology fault.
    Fault(NetFault),
    /// Lift a topology fault (must mirror an earlier [`NetMsg::Fault`]).
    FaultClear(NetFault),
}

/// A finished transfer, handed to the completion hook.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDone {
    /// The tag from the originating [`TransferReq`].
    pub tag: FlowTag,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Wall time the transfer took, including propagation latency.
    pub secs: f64,
    /// What the transfer would have taken alone on a healthy fabric:
    /// `bytes / base_bottleneck + latency`. `secs - ideal_secs` is stall.
    pub ideal_secs: f64,
    /// Whether the flow was aborted after stalling on a cut link for the
    /// configured timeout instead of draining its bytes.
    pub aborted: bool,
}

impl FlowDone {
    /// Seconds lost to contention, faults, or degraded links (≥ 0).
    pub fn stall_secs(&self) -> f64 {
        (self.secs - self.ideal_secs).max(0.0)
    }
}

/// Completion callback: routes a [`FlowDone`] back into the simulation.
pub type CompletionHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, &FlowDone) + 'a>;

struct ActiveFlow {
    id: u64,
    tag: FlowTag,
    src: u32,
    dst: u32,
    bytes: u64,
    remaining: f64,
    rate: f64,
    links: Vec<LinkId>,
    latency: SimDuration,
    started: SimTime,
    ideal_secs: f64,
    /// When the flow's fair share last dropped to zero (a cut on its path);
    /// cleared as soon as any reallocation gives it a positive rate again.
    stalled_since: Option<SimTime>,
}

/// The flow-level network model as a simulation actor.
pub struct NetActor<'a, M = NetMsg> {
    topo: NetTopology,
    flows: Vec<ActiveFlow>,
    /// Flows that drained their bytes and are riding out propagation latency.
    in_delivery: Vec<(u64, FlowDone)>,
    next_id: u64,
    last_update: SimTime,
    pending: Option<EventToken>,
    abort_pending: Option<EventToken>,
    flow_timeout: Option<SimDuration>,
    on_complete: Option<CompletionHook<'a, M>>,
    started: u64,
    delivered: u64,
    aborted: u64,
    stall_secs: f64,
}

impl<'a, M: MessageEnvelope<NetMsg>> NetActor<'a, M> {
    /// Creates a network actor over `topo` with no completion hook.
    pub fn new(topo: NetTopology) -> Self {
        NetActor {
            topo,
            flows: Vec::new(),
            in_delivery: Vec::new(),
            next_id: 0,
            last_update: SimTime::ZERO,
            pending: None,
            abort_pending: None,
            flow_timeout: None,
            on_complete: None,
            started: 0,
            delivered: 0,
            aborted: 0,
            stall_secs: 0.0,
        }
    }

    /// Installs the completion hook that routes [`FlowDone`]s to tenants.
    pub fn with_completion(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, &FlowDone) + 'a,
    ) -> Self {
        self.on_complete = Some(Box::new(hook));
        self
    }

    /// Aborts any flow whose fair share stays at zero (its path holds a cut
    /// link) for `timeout`, emitting a `net/flow_aborted` record and handing
    /// the owner an aborted [`FlowDone`] so it can retry or fail fast.
    /// `None` (the default) keeps the legacy stall-until-restore behaviour.
    pub fn with_flow_timeout(mut self, timeout: Option<SimDuration>) -> Self {
        self.flow_timeout = timeout;
        self
    }

    /// The underlying topology.
    pub fn topology(&self) -> &NetTopology {
        &self.topo
    }

    /// Flows started so far.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Flows delivered to the completion hook so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Flows aborted after stalling past the configured timeout.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Flows currently moving bytes or riding out latency.
    pub fn in_flight(&self) -> usize {
        self.flows.len() + self.in_delivery.len()
    }

    /// Total seconds completed flows spent beyond their uncontended ideal.
    pub fn stall_secs(&self) -> f64 {
        self.stall_secs
    }

    /// Drains remaining bytes at the rates in force since the last event.
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_update).as_secs_f64();
        if elapsed > 0.0 {
            for f in &mut self.flows {
                f.remaining = (f.remaining - f.rate * elapsed).max(0.0);
            }
        }
        self.last_update = now;
    }

    /// Completes drained flows, then recomputes rates and retimes the
    /// pending completion event. Call after every allocation-changing event
    /// (with `advance` already done).
    fn settle(&mut self, ctx: &mut Context<'_, M>) {
        let now = ctx.now();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].remaining <= DRAIN_EPS {
                let f = self.flows.remove(i);
                let latency_secs = f.latency.as_secs_f64();
                let secs = now.saturating_since(f.started).as_secs_f64() + latency_secs;
                let done = FlowDone {
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    bytes: f.bytes,
                    secs,
                    ideal_secs: f.ideal_secs,
                    aborted: false,
                };
                self.stall_secs += done.stall_secs();
                ctx.emit_fields(
                    NET_COMPONENT,
                    "flow_end",
                    &[
                        ("owner", Field::Str(f.tag.owner.name())),
                        ("id", Field::U64(f.tag.id)),
                        ("src", Field::U64(u64::from(f.src))),
                        ("dst", Field::U64(u64::from(f.dst))),
                        ("bytes", Field::U64(f.bytes)),
                        ("secs", Field::F64(secs)),
                        ("ideal_secs", Field::F64(done.ideal_secs)),
                        ("stall_secs", Field::F64(done.stall_secs())),
                    ],
                );
                ctx.send_self(f.latency, M::wrap(NetMsg::Deliver(f.id)));
                self.in_delivery.push((f.id, done));
            } else {
                i += 1;
            }
        }
        self.reallocate(ctx);
    }

    /// Recomputes max-min rates and reschedules the earliest completion.
    fn reallocate(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(token) = self.pending.take() {
            ctx.cancel(token);
        }
        if self.flows.is_empty() {
            return;
        }
        let caps = self.topo.effective_capacities();
        let paths: Vec<Vec<LinkId>> = self.flows.iter().map(|f| f.links.clone()).collect();
        let rates = max_min_rates(&paths, &caps);
        let now = ctx.now();
        let mut earliest = f64::INFINITY;
        for (f, &rate) in self.flows.iter_mut().zip(&rates) {
            f.rate = rate;
            if rate > 0.0 {
                f.stalled_since = None;
                earliest = earliest.min(f.remaining / rate);
            } else if f.stalled_since.is_none() {
                f.stalled_since = Some(now);
            }
        }
        // Round the prediction *up* one nanosecond so the argmin flow is
        // fully drained when the event fires. Flows on cut links have no
        // finite prediction; they wait for the next allocation change (or
        // their abort deadline, when a flow timeout is configured).
        if let Some(dt) = SimDuration::try_from_secs_f64(earliest) {
            self.pending = Some(ctx.send_self(
                dt + SimDuration::from_nanos(1),
                M::wrap(NetMsg::Complete),
            ));
        }
        self.reschedule_aborts(ctx);
    }

    /// Retimes the single pending abort event to the earliest stalled-flow
    /// deadline (cancel + re-send, same idiom as the completion event).
    fn reschedule_aborts(&mut self, ctx: &mut Context<'_, M>) {
        if let Some(token) = self.abort_pending.take() {
            ctx.cancel(token);
        }
        let Some(timeout) = self.flow_timeout else { return };
        let mut earliest: Option<SimTime> = None;
        for f in &self.flows {
            if let Some(since) = f.stalled_since {
                let deadline = since + timeout;
                earliest = Some(earliest.map_or(deadline, |e: SimTime| e.min(deadline)));
            }
        }
        if let Some(at) = earliest {
            let delay = at.saturating_since(ctx.now());
            self.abort_pending = Some(ctx.send_self(delay, M::wrap(NetMsg::Abort)));
        }
    }

    /// Aborts every flow that has been stalled for at least the timeout,
    /// then resettles the allocation (which re-arms the next deadline).
    fn abort_due(&mut self, ctx: &mut Context<'_, M>) {
        let Some(timeout) = self.flow_timeout else { return };
        let now = ctx.now();
        let mut i = 0;
        while i < self.flows.len() {
            let due = self.flows[i]
                .stalled_since
                .is_some_and(|since| since + timeout <= now);
            if !due {
                i += 1;
                continue;
            }
            let f = self.flows.remove(i);
            let secs = now.saturating_since(f.started).as_secs_f64();
            let waited = now
                .saturating_since(f.stalled_since.unwrap_or(f.started))
                .as_secs_f64();
            let done = FlowDone {
                tag: f.tag,
                src: f.src,
                dst: f.dst,
                bytes: f.bytes,
                secs,
                ideal_secs: f.ideal_secs,
                aborted: true,
            };
            self.aborted += 1;
            ctx.emit_fields(
                NET_COMPONENT,
                "flow_aborted",
                &[
                    ("owner", Field::Str(f.tag.owner.name())),
                    ("id", Field::U64(f.tag.id)),
                    ("src", Field::U64(u64::from(f.src))),
                    ("dst", Field::U64(u64::from(f.dst))),
                    ("bytes", Field::U64(f.bytes)),
                    ("secs", Field::F64(secs)),
                    ("waited_secs", Field::F64(waited)),
                ],
            );
            if let Some(hook) = self.on_complete.as_mut() {
                hook(ctx, &done);
            }
        }
        self.settle(ctx);
    }

    fn start_flow(&mut self, ctx: &mut Context<'_, M>, req: TransferReq) {
        self.advance(ctx.now());
        let id = self.next_id;
        self.next_id += 1;
        self.started += 1;
        ctx.emit_fields(
            NET_COMPONENT,
            "flow_start",
            &[
                ("owner", Field::Str(req.tag.owner.name())),
                ("id", Field::U64(req.tag.id)),
                ("src", Field::U64(u64::from(req.src))),
                ("dst", Field::U64(u64::from(req.dst))),
                ("bytes", Field::U64(req.bytes)),
            ],
        );
        let latency = self.topo.latency(req.src, req.dst);
        let links = self.topo.path(req.src, req.dst);
        let ideal_xfer = if links.is_empty() {
            0.0
        } else {
            req.bytes as f64 / self.topo.base_bottleneck(req.src, req.dst)
        };
        let ideal_secs = ideal_xfer + latency.as_secs_f64();
        self.flows.push(ActiveFlow {
            id,
            tag: req.tag,
            src: req.src,
            dst: req.dst,
            bytes: req.bytes,
            // Node-local (or empty) transfers drain immediately: latency only.
            remaining: if links.is_empty() { 0.0 } else { req.bytes as f64 },
            rate: 0.0,
            links,
            latency,
            started: ctx.now(),
            ideal_secs,
            stalled_since: None,
        });
        self.settle(ctx);
    }

    fn deliver(&mut self, ctx: &mut Context<'_, M>, id: u64) {
        let Some(pos) = self.in_delivery.iter().position(|(fid, _)| *fid == id) else {
            return;
        };
        let (_, done) = self.in_delivery.remove(pos);
        self.delivered += 1;
        if let Some(hook) = self.on_complete.as_mut() {
            hook(ctx, &done);
        }
    }

    fn apply_fault(&mut self, ctx: &mut Context<'_, M>, fault: NetFault, clear: bool) {
        self.advance(ctx.now());
        match (fault, clear) {
            (NetFault::Cut { node }, false) => {
                self.topo.cut_node(node);
                ctx.emit_fields(NET_COMPONENT, "link_cut", &[("node", Field::U64(u64::from(node)))]);
            }
            (NetFault::Cut { node }, true) => {
                self.topo.restore_node(node);
                ctx.emit_fields(
                    NET_COMPONENT,
                    "link_restored",
                    &[("node", Field::U64(u64::from(node)))],
                );
            }
            (NetFault::Degrade { node, factor }, false) => {
                self.topo.degrade_node(node, factor);
                ctx.emit_fields(
                    NET_COMPONENT,
                    "link_degraded",
                    &[("node", Field::U64(u64::from(node))), ("factor", Field::F64(factor))],
                );
            }
            (NetFault::Degrade { node, factor }, true) => {
                self.topo.undegrade_node(node, factor);
                ctx.emit_fields(
                    NET_COMPONENT,
                    "link_healed",
                    &[("node", Field::U64(u64::from(node)))],
                );
            }
        }
        self.settle(ctx);
    }
}

impl<M: MessageEnvelope<NetMsg>> Actor<M> for NetActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            NetMsg::Transfer(req) => self.start_flow(ctx, req),
            NetMsg::Complete => {
                self.pending = None;
                self.advance(ctx.now());
                self.settle(ctx);
            }
            NetMsg::Deliver(id) => self.deliver(ctx, id),
            NetMsg::Abort => {
                self.abort_pending = None;
                self.advance(ctx.now());
                self.abort_due(ctx);
            }
            NetMsg::Fault(fault) => self.apply_fault(ctx, fault, false),
            NetMsg::FaultClear(fault) => self.apply_fault(ctx, fault, true),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::engine::Simulation;

    fn topo() -> NetTopology {
        NetTopology::new(
            8,
            4,
            100.0 * MB,
            400.0 * MB,
            SimDuration::from_micros(500),
            SimDuration::from_millis(2),
        )
    }

    const MB: f64 = 1024.0 * 1024.0;

    fn req(src: u32, dst: u32, bytes: u64, id: u64) -> TransferReq {
        TransferReq { src, dst, bytes, tag: FlowTag { owner: FlowOwner::Test, id } }
    }

    /// Runs transfers scheduled at t=0 plus optional extra events, returning
    /// (completion times by tag id, trace json).
    fn run(
        events: Vec<(SimTime, NetMsg)>,
    ) -> (Vec<(u64, f64)>, String) {
        let done = std::cell::RefCell::new(Vec::new());
        let mut sim: Simulation<'_, NetMsg> = Simulation::new(7);
        let actor = NetActor::new(topo()).with_completion(|ctx, fd: &FlowDone| {
            done.borrow_mut().push((fd.tag.id, ctx.now().as_secs_f64()));
        });
        let id = sim.add_actor(actor);
        for (at, msg) in events {
            sim.schedule(at, id, msg);
        }
        sim.run();
        let trace = sim.trace().to_json_string();
        drop(sim);
        (done.into_inner(), trace)
    }

    #[test]
    fn lone_flow_finishes_at_ideal_time() {
        let bytes = (100.0 * MB) as u64;
        let (done, _) = run(vec![(SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0)))]);
        assert_eq!(done.len(), 1);
        // 100 MiB over a 100 MiB/s access pair: drains at 1 s, delivers one
        // same-rack latency (0.5 ms) later.
        let t = done[0].1;
        assert!((t - 1.0005).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn two_flows_share_their_bottleneck() {
        let bytes = (100.0 * MB) as u64;
        // Both flows leave node 0: its access link halves each rate.
        let (done, _) = run(vec![
            (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0))),
            (SimTime::ZERO, NetMsg::Transfer(req(0, 2, bytes, 1))),
        ]);
        assert_eq!(done.len(), 2);
        for &(_, t) in &done {
            assert!((t - 2.0005).abs() < 1e-2, "t = {t}");
        }
    }

    #[test]
    fn late_arrival_slows_the_first_flow() {
        let bytes = (100.0 * MB) as u64;
        // Flow 0 runs alone for 0.5 s (50 MiB done), then shares: the
        // remaining 50 MiB takes 1 s more.
        let (done, _) = run(vec![
            (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0))),
            (SimTime::from_nanos(500_000_000), NetMsg::Transfer(req(0, 2, bytes, 1))),
        ]);
        let t0 = done.iter().find(|(id, _)| *id == 0).unwrap().1;
        let t1 = done.iter().find(|(id, _)| *id == 1).unwrap().1;
        assert!((t0 - 1.5005).abs() < 1e-2, "t0 = {t0}");
        assert!((t1 - 2.0005).abs() < 1e-2, "t1 = {t1}");
    }

    #[test]
    fn node_local_transfer_pays_latency_only() {
        let (done, _) = run(vec![(
            SimTime::ZERO,
            NetMsg::Transfer(req(3, 3, u64::MAX, 0)),
        )]);
        assert_eq!(done.len(), 1);
        assert!(done[0].1 < 1e-9, "t = {}", done[0].1);
    }

    #[test]
    fn cut_link_stalls_until_restored() {
        let bytes = (10.0 * MB) as u64;
        let (done, trace) = run(vec![
            (SimTime::ZERO, NetMsg::Fault(NetFault::Cut { node: 0 })),
            (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0))),
            (SimTime::from_secs(5), NetMsg::FaultClear(NetFault::Cut { node: 0 })),
        ]);
        assert_eq!(done.len(), 1);
        let t = done[0].1;
        assert!((t - 5.1005).abs() < 1e-2, "t = {t}");
        assert!(trace.contains("link_cut") && trace.contains("link_restored"));
    }

    #[test]
    fn degraded_link_slows_proportionally() {
        let bytes = (100.0 * MB) as u64;
        let (done, _) = run(vec![
            (SimTime::ZERO, NetMsg::Fault(NetFault::Degrade { node: 0, factor: 0.25 })),
            (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0))),
        ]);
        let t = done[0].1;
        assert!((t - 4.0005).abs() < 1e-2, "t = {t}");
    }

    #[test]
    fn cross_rack_flows_contend_on_uplinks() {
        let bytes = (400.0 * MB) as u64;
        // Four cross-rack flows from distinct sources saturate the 400 MiB/s
        // uplink pair: each gets a 100 MiB/s fair share.
        let events: Vec<_> = (0..4)
            .map(|i| {
                (SimTime::ZERO, NetMsg::Transfer(req(i, 4 + i, bytes, u64::from(i))))
            })
            .collect();
        let (done, _) = run(events);
        assert_eq!(done.len(), 4);
        for &(_, t) in &done {
            assert!((t - 4.002).abs() < 1e-2, "t = {t}");
        }
    }

    /// Like [`run`] but with a flow timeout armed; also records abort flags.
    fn run_with_timeout(
        timeout: Option<SimDuration>,
        events: Vec<(SimTime, NetMsg)>,
    ) -> (Vec<(u64, f64, bool)>, String, u64) {
        let done = std::cell::RefCell::new(Vec::new());
        let mut actor = NetActor::new(topo()).with_flow_timeout(timeout).with_completion(
            |ctx, fd: &FlowDone| {
                done.borrow_mut().push((fd.tag.id, ctx.now().as_secs_f64(), fd.aborted));
            },
        );
        let mut sim: Simulation<'_, NetMsg> = Simulation::new(7);
        let id = sim.add_actor(&mut actor);
        for (at, msg) in events {
            sim.schedule(at, id, msg);
        }
        sim.run();
        let trace = sim.trace().to_json_string();
        drop(sim);
        let aborted = actor.aborted();
        drop(actor);
        (done.into_inner(), trace, aborted)
    }

    #[test]
    fn stalled_flow_aborts_after_timeout() {
        let bytes = (10.0 * MB) as u64;
        // Node 0 is cut before the transfer starts and never restored: with a
        // 10 s timeout the flow must abort at t = 10 s instead of stalling
        // forever.
        let (done, trace, aborted) = run_with_timeout(
            Some(SimDuration::from_secs(10)),
            vec![
                (SimTime::ZERO, NetMsg::Fault(NetFault::Cut { node: 0 })),
                (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 7))),
            ],
        );
        assert_eq!(aborted, 1);
        assert_eq!(done.len(), 1);
        let (id, t, was_aborted) = done[0];
        assert_eq!(id, 7);
        assert!(was_aborted);
        assert!((t - 10.0).abs() < 1e-6, "t = {t}");
        assert!(trace.contains("flow_aborted"));
        assert!(!trace.contains("flow_end"), "aborted flow must not also end");
    }

    #[test]
    fn restore_before_timeout_prevents_abort() {
        let bytes = (10.0 * MB) as u64;
        let (done, trace, aborted) = run_with_timeout(
            Some(SimDuration::from_secs(10)),
            vec![
                (SimTime::ZERO, NetMsg::Fault(NetFault::Cut { node: 0 })),
                (SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0))),
                (SimTime::from_secs(5), NetMsg::FaultClear(NetFault::Cut { node: 0 })),
            ],
        );
        assert_eq!(aborted, 0);
        assert_eq!(done.len(), 1);
        assert!(!done[0].2, "flow must complete, not abort");
        assert!((done[0].1 - 5.1005).abs() < 1e-2, "t = {}", done[0].1);
        assert!(!trace.contains("flow_aborted"));
    }

    #[test]
    fn healthy_flows_never_hit_the_timeout() {
        let bytes = (100.0 * MB) as u64;
        // A short timeout must not fire for flows that are merely slow: the
        // deadline clock only runs while the fair share is zero.
        let (done, trace, aborted) = run_with_timeout(
            Some(SimDuration::from_millis(100)),
            vec![(SimTime::ZERO, NetMsg::Transfer(req(0, 1, bytes, 0)))],
        );
        assert_eq!(aborted, 0);
        assert_eq!(done.len(), 1);
        assert!(!trace.contains("flow_aborted"));
    }

    #[test]
    fn same_seed_runs_are_byte_identical() {
        let mk = || {
            run(vec![
                (SimTime::ZERO, NetMsg::Transfer(req(0, 5, 123_456_789, 0))),
                (SimTime::from_nanos(250_000_000), NetMsg::Transfer(req(1, 5, 987_654, 1))),
                (SimTime::from_secs(1), NetMsg::Fault(NetFault::Degrade { node: 5, factor: 0.5 })),
                (SimTime::from_secs(2), NetMsg::FaultClear(NetFault::Degrade { node: 5, factor: 0.5 })),
            ])
        };
        let (d1, t1) = mk();
        let (d2, t2) = mk();
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn stall_accounting_is_positive_under_contention() {
        let bytes = (100.0 * MB) as u64;
        let mut actor = NetActor::<NetMsg>::new(topo());
        let mut sim: Simulation<'_, NetMsg> = Simulation::new(7);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, NetMsg::Transfer(req(0, 1, bytes, 0)));
        sim.schedule(SimTime::ZERO, id, NetMsg::Transfer(req(0, 2, bytes, 1)));
        sim.run();
        drop(sim);
        assert_eq!(actor.started(), 2);
        assert_eq!(actor.delivered(), 2);
        assert_eq!(actor.in_flight(), 0);
        // Each flow took ~2 s against a ~1 s ideal.
        assert!(actor.stall_secs() > 1.5, "stall = {}", actor.stall_secs());
    }
}
