//! Synthetic graph generators.
//!
//! Graphalytics \[42\] evaluates on synthetic datasets with controlled scale;
//! we provide the standard families: Erdős–Rényi, R-MAT/Kronecker-style
//! (skewed, community-like), and preferential attachment (scale-free).

use crate::graph::{Graph, VertexId};
use mcs_simcore::rng::RngStream;

/// Uniform random directed graph with `edge_count` edges (G(n, m)).
///
/// # Panics
/// Panics when `vertex_count == 0` and `edge_count > 0`.
pub fn erdos_renyi(vertex_count: u32, edge_count: u64, rng: &mut RngStream) -> Graph {
    assert!(vertex_count > 0 || edge_count == 0, "edges need vertices");
    let mut edges = Vec::with_capacity(edge_count as usize);
    for _ in 0..edge_count {
        let s = rng.uniform_usize(vertex_count as usize) as VertexId;
        let t = rng.uniform_usize(vertex_count as usize) as VertexId;
        edges.push((s, t));
    }
    Graph::from_edges(vertex_count, &edges, None)
}

/// R-MAT (recursive matrix) generator: the Kronecker-style generator behind
/// Graph500 and LDBC datasets. `scale` gives `2^scale` vertices; the
/// (a, b, c) probabilities steer skew (Graph500 uses 0.57, 0.19, 0.19).
pub fn rmat(
    scale: u32,
    edge_factor: u64,
    (a, b, c): (f64, f64, f64),
    rng: &mut RngStream,
) -> Graph {
    assert!(scale <= 30, "scale too large for in-memory generation");
    let n: u32 = 1 << scale;
    let edge_count = edge_factor * n as u64;
    let mut edges = Vec::with_capacity(edge_count as usize);
    for _ in 0..edge_count {
        let (mut lo_s, mut lo_t) = (0u32, 0u32);
        let mut half = n >> 1;
        while half > 0 {
            let r = rng.next_f64();
            let (ds, dt) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, half)
            } else if r < a + b + c {
                (half, 0)
            } else {
                (half, half)
            };
            lo_s += ds;
            lo_t += dt;
            half >>= 1;
        }
        edges.push((lo_s, lo_t));
    }
    Graph::from_edges(n, &edges, None)
}

/// Preferential-attachment (Barabási–Albert style) graph: each new vertex
/// attaches `m` edges to existing vertices chosen proportionally to degree.
/// Produces the scale-free degree distribution of social networks (§6.6).
pub fn preferential_attachment(vertex_count: u32, m: u32, rng: &mut RngStream) -> Graph {
    let m = m.max(1);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    // Repeated-endpoints list: sampling from it is degree-proportional.
    let mut endpoints: Vec<VertexId> = Vec::new();
    let seed = (m + 1).min(vertex_count.max(1));
    // Seed clique among the first vertices.
    for i in 0..seed {
        for j in (i + 1)..seed {
            edges.push((i, j));
            endpoints.push(i);
            endpoints.push(j);
        }
    }
    for v in seed..vertex_count {
        for _ in 0..m {
            let t = if endpoints.is_empty() {
                0
            } else {
                endpoints[rng.uniform_usize(endpoints.len())]
            };
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(vertex_count, &edges, None)
}

/// Attaches uniform random weights in `[lo, hi)` to a graph's edges
/// (for SSSP benchmarking).
pub fn with_random_weights(g: &Graph, lo: f64, hi: f64, rng: &mut RngStream) -> Graph {
    let mut edges = Vec::with_capacity(g.edge_count() as usize);
    let mut weights = Vec::with_capacity(g.edge_count() as usize);
    for v in g.vertices() {
        for &t in g.neighbors(v) {
            edges.push((v, t));
            weights.push(rng.uniform_f64(lo, hi));
        }
    }
    Graph::from_edges(g.vertex_count(), &edges, Some(&weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_counts() {
        let mut rng = RngStream::new(1, "er");
        let g = erdos_renyi(100, 500, &mut rng);
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 500);
    }

    #[test]
    fn erdos_renyi_deterministic() {
        let g1 = erdos_renyi(50, 200, &mut RngStream::new(2, "er"));
        let g2 = erdos_renyi(50, 200, &mut RngStream::new(2, "er"));
        assert_eq!(g1, g2);
    }

    #[test]
    fn rmat_is_skewed() {
        let mut rng = RngStream::new(3, "rmat");
        let g = rmat(10, 8, (0.57, 0.19, 0.19), &mut rng);
        assert_eq!(g.vertex_count(), 1024);
        assert_eq!(g.edge_count(), 8 * 1024);
        // Skew: the max out-degree should far exceed the mean (8).
        let max_deg = g.vertices().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg > 40, "max degree {max_deg} not skewed");
    }

    #[test]
    fn preferential_attachment_is_scale_free_ish() {
        let mut rng = RngStream::new(4, "pa");
        let g = preferential_attachment(2_000, 2, &mut rng);
        let u = g.undirected();
        let mut degrees: Vec<u64> = u.vertices().map(|v| u.out_degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs exist: top degree far above the median.
        let median = degrees[degrees.len() / 2];
        assert!(degrees[0] > median * 5, "top {} median {}", degrees[0], median);
    }

    #[test]
    fn random_weights_in_range() {
        let mut rng = RngStream::new(5, "w");
        let g = erdos_renyi(20, 100, &mut rng);
        let wg = with_random_weights(&g, 1.0, 5.0, &mut rng);
        assert!(wg.is_weighted());
        for v in wg.vertices() {
            for (_, w) in wg.edges_of(v) {
                assert!((1.0..5.0).contains(&w));
            }
        }
    }
}
