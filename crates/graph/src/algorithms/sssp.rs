//! Single-source shortest paths (Graphalytics algorithm 6), for graphs with
//! non-negative edge weights. Unreachable vertices get `f64::INFINITY`.

use crate::bsp::{BspEngine, Outbox, VertexProgram};
use crate::graph::{Graph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Serial reference SSSP: Dijkstra with a binary heap.
pub fn sssp_serial(graph: &Graph, source: VertexId) -> Vec<f64> {
    let n = graph.vertex_count() as usize;
    let mut dist = vec![f64::INFINITY; n];
    if (source as usize) >= n {
        return dist;
    }
    #[derive(PartialEq)]
    struct Entry(f64, VertexId);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(o))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, o: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&o.0).unwrap_or(std::cmp::Ordering::Equal)
                .then(self.1.cmp(&o.1))
        }
    }
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse(Entry(0.0, source)));
    while let Some(Reverse(Entry(d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (t, w) in graph.edges_of(v) {
            debug_assert!(w >= 0.0, "Dijkstra needs non-negative weights");
            let nd = d + w;
            if nd < dist[t as usize] {
                dist[t as usize] = nd;
                heap.push(Reverse(Entry(nd, t)));
            }
        }
    }
    dist
}

/// The vertex-centric SSSP program (Bellman-Ford style relaxation).
pub struct SsspProgram {
    /// The source vertex.
    pub source: VertexId,
}

impl VertexProgram for SsspProgram {
    type State = f64;
    type Message = f64;

    fn init(&self, _v: VertexId, _graph: &Graph) -> f64 {
        f64::INFINITY
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut f64,
        messages: &[f64],
        outbox: &mut Outbox<'_, f64>,
        graph: &Graph,
        superstep: usize,
        _agg: f64,
    ) {
        let candidate = if superstep == 0 && v == self.source {
            0.0
        } else {
            messages.iter().fold(f64::INFINITY, |a, &b| a.min(b))
        };
        if candidate < *state {
            *state = candidate;
            for (t, w) in graph.edges_of(v) {
                outbox.send(t, *state + w);
            }
        }
    }
}

/// BSP SSSP on `engine`.
pub fn sssp(graph: &Graph, source: VertexId, engine: &BspEngine) -> Vec<f64> {
    engine.run(graph, &SsspProgram { source }).states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, with_random_weights};
    use mcs_simcore::rng::RngStream;

    fn weighted_diamond() -> Graph {
        // 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (2), 2 -> 3 (1), 1 -> 3 (10)
        Graph::from_edges(
            4,
            &[(0, 1), (0, 2), (1, 2), (2, 3), (1, 3)],
            Some(&[1.0, 4.0, 2.0, 1.0, 10.0]),
        )
    }

    #[test]
    fn hand_checked_shortest_paths() {
        let g = weighted_diamond();
        let d = sssp_serial(&g, 0);
        assert_eq!(d, vec![0.0, 1.0, 3.0, 4.0]);
        assert_eq!(sssp(&g, 0, &BspEngine::serial()), d);
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = Graph::from_edges(3, &[(0, 1)], None);
        let d = sssp_serial(&g, 0);
        assert!(d[2].is_infinite());
        let b = sssp(&g, 0, &BspEngine::serial());
        assert!(b[2].is_infinite());
    }

    #[test]
    fn unweighted_equals_bfs_distance() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], None);
        assert_eq!(sssp_serial(&g, 0), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn bsp_matches_dijkstra_on_random_weighted_graphs() {
        for seed in 0..3 {
            let mut rng = RngStream::new(seed, "sssp");
            let base = erdos_renyi(200, 1_000, &mut rng);
            let g = with_random_weights(&base, 1.0, 10.0, &mut rng);
            let reference = sssp_serial(&g, 0);
            for engine in [BspEngine::serial(), BspEngine::parallel(4)] {
                let result = sssp(&g, 0, &engine);
                for (a, b) in result.iter().zip(&reference) {
                    if a.is_finite() || b.is_finite() {
                        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
                    }
                }
            }
        }
    }
}
