//! Community detection by label propagation (Graphalytics algorithm 4):
//! each vertex repeatedly adopts the most frequent label among its
//! neighbors, ties broken toward the smallest label.

use crate::bsp::{BspEngine, Outbox, VertexProgram};
use crate::graph::{Graph, VertexId};
use std::collections::HashMap;

fn most_frequent_min(labels: impl Iterator<Item = u32>) -> Option<u32> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))
        .map(|(l, _)| l)
}

/// Serial reference CDLP: synchronous label propagation on the undirected
/// view for a fixed number of iterations.
pub fn cdlp_serial(graph: &Graph, iterations: usize) -> Vec<u32> {
    let u = graph.undirected();
    let n = u.vertex_count() as usize;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    let mut next = labels.clone();
    for _ in 0..iterations {
        for v in u.vertices() {
            let incoming = u.neighbors(v).iter().map(|&t| labels[t as usize]);
            next[v as usize] = most_frequent_min(incoming).unwrap_or(labels[v as usize]);
        }
        std::mem::swap(&mut labels, &mut next);
    }
    labels
}

/// The vertex-centric CDLP program (expects an undirected graph).
pub struct CdlpProgram {
    /// Number of propagation rounds.
    pub iterations: usize,
}

impl VertexProgram for CdlpProgram {
    type State = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _graph: &Graph) -> u32 {
        v
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut u32,
        messages: &[u32],
        outbox: &mut Outbox<'_, u32>,
        graph: &Graph,
        superstep: usize,
        _agg: f64,
    ) {
        if superstep > 0 {
            if let Some(l) = most_frequent_min(messages.iter().copied()) {
                *state = l;
            }
        }
        if superstep < self.iterations {
            for &t in graph.neighbors(v) {
                outbox.send(t, *state);
            }
            if graph.out_degree(v) == 0 {
                outbox.send(v, *state); // isolated vertices stay active
            }
        }
    }
}

/// BSP CDLP: symmetrizes the graph, then runs `iterations` rounds.
pub fn cdlp(graph: &Graph, iterations: usize, engine: &BspEngine) -> Vec<u32> {
    let u = graph.undirected();
    engine.run(&u, &CdlpProgram { iterations }).states
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles joined by one bridge edge.
    fn two_communities() -> Graph {
        Graph::from_edges(
            6,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)],
            None,
        )
    }

    #[test]
    fn communities_found() {
        let labels = cdlp_serial(&two_communities(), 10);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[4], labels[5]);
    }

    #[test]
    fn bsp_matches_serial() {
        let g = two_communities();
        for iters in [1, 3, 7] {
            let reference = cdlp_serial(&g, iters);
            assert_eq!(cdlp(&g, iters, &BspEngine::serial()), reference, "iters {iters}");
            assert_eq!(cdlp(&g, iters, &BspEngine::parallel(3)), reference);
        }
    }

    #[test]
    fn tie_break_is_smallest_label() {
        assert_eq!(most_frequent_min([5, 3, 5, 3].into_iter()), Some(3));
        assert_eq!(most_frequent_min([7].into_iter()), Some(7));
        assert_eq!(most_frequent_min(std::iter::empty()), None);
    }

    #[test]
    fn isolated_vertex_keeps_own_label() {
        let g = Graph::from_edges(3, &[(0, 1)], None);
        let labels = cdlp(&g, 5, &BspEngine::serial());
        assert_eq!(labels[2], 2);
    }
}
