//! Breadth-first search (Graphalytics algorithm 1): depth of every vertex
//! from a source, `-1` when unreachable.

use crate::bsp::{BspEngine, Outbox, VertexProgram};
use crate::graph::{Graph, VertexId};
use std::collections::VecDeque;

/// Serial reference BFS.
pub fn bfs_serial(graph: &Graph, source: VertexId) -> Vec<i64> {
    let mut depth = vec![-1i64; graph.vertex_count() as usize];
    if source >= graph.vertex_count() {
        return depth;
    }
    depth[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for &t in graph.neighbors(v) {
            if depth[t as usize] < 0 {
                depth[t as usize] = depth[v as usize] + 1;
                queue.push_back(t);
            }
        }
    }
    depth
}

/// The vertex-centric BFS program.
pub struct BfsProgram {
    /// The source vertex.
    pub source: VertexId,
}

impl VertexProgram for BfsProgram {
    type State = i64;
    type Message = ();

    fn init(&self, _v: VertexId, _graph: &Graph) -> i64 {
        -1
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut i64,
        messages: &[()],
        outbox: &mut Outbox<'_, ()>,
        graph: &Graph,
        superstep: usize,
        _agg: f64,
    ) {
        let discovered = if superstep == 0 {
            v == self.source
        } else {
            *state < 0 && !messages.is_empty()
        };
        if discovered {
            *state = superstep as i64;
            for &t in graph.neighbors(v) {
                outbox.send(t, ());
            }
        }
    }
}

/// BSP BFS on `engine`.
pub fn bfs(graph: &Graph, source: VertexId, engine: &BspEngine) -> Vec<i64> {
    engine.run(graph, &BfsProgram { source }).states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{erdos_renyi, rmat};
    use mcs_simcore::rng::RngStream;

    #[test]
    fn chain_depths() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], None);
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&g, 0, &BspEngine::serial()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_is_minus_one() {
        let g = Graph::from_edges(3, &[(0, 1)], None);
        assert_eq!(bfs_serial(&g, 0), vec![0, 1, -1]);
        assert_eq!(bfs(&g, 0, &BspEngine::serial()), vec![0, 1, -1]);
    }

    #[test]
    fn bsp_matches_serial_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = RngStream::new(seed, "bfs");
            let g = erdos_renyi(300, 1_200, &mut rng);
            let reference = bfs_serial(&g, 0);
            assert_eq!(bfs(&g, 0, &BspEngine::serial()), reference);
            assert_eq!(bfs(&g, 0, &BspEngine::parallel(4)), reference);
        }
    }

    #[test]
    fn bsp_matches_serial_on_rmat() {
        let mut rng = RngStream::new(9, "bfs-rmat");
        let g = rmat(9, 8, (0.57, 0.19, 0.19), &mut rng);
        let reference = bfs_serial(&g, 1);
        assert_eq!(bfs(&g, 1, &BspEngine::parallel(4)), reference);
    }
}
