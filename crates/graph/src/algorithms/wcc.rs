//! Weakly connected components (Graphalytics algorithm 3): every vertex is
//! labelled with the smallest vertex id in its component, ignoring edge
//! direction.

use crate::bsp::{BspEngine, Outbox, VertexProgram};
use crate::graph::{Graph, VertexId};

/// Serial reference WCC via union-find with path compression.
pub fn wcc_serial(graph: &Graph) -> Vec<u32> {
    let n = graph.vertex_count() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut v: u32) -> u32 {
        while parent[v as usize] != v {
            parent[v as usize] = parent[parent[v as usize] as usize];
            v = parent[v as usize];
        }
        v
    }
    for v in graph.vertices() {
        for &t in graph.neighbors(v) {
            let (a, b) = (find(&mut parent, v), find(&mut parent, t));
            if a != b {
                // Union by smaller id so the root is the minimum label.
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                parent[hi as usize] = lo;
            }
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// The vertex-centric min-label-propagation program (expects an undirected
/// graph; use [`Graph::undirected`] first for directed inputs).
pub struct WccProgram;

impl VertexProgram for WccProgram {
    type State = u32;
    type Message = u32;

    fn init(&self, v: VertexId, _graph: &Graph) -> u32 {
        v
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut u32,
        messages: &[u32],
        outbox: &mut Outbox<'_, u32>,
        graph: &Graph,
        superstep: usize,
        _agg: f64,
    ) {
        let improved = match messages.iter().min() {
            Some(&m) if m < *state => {
                *state = m;
                true
            }
            _ => false,
        };
        if superstep == 0 || improved {
            for &t in graph.neighbors(v) {
                outbox.send(t, *state);
            }
        }
    }
}

/// BSP WCC: symmetrizes the graph, then propagates minimum labels.
pub fn wcc(graph: &Graph, engine: &BspEngine) -> Vec<u32> {
    let undirected = graph.undirected();
    engine.run(&undirected, &WccProgram).states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;
    use mcs_simcore::rng::RngStream;

    #[test]
    fn two_components() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)], None);
        assert_eq!(wcc_serial(&g), vec![0, 0, 0, 3, 3]);
        assert_eq!(wcc(&g, &BspEngine::serial()), vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn direction_ignored() {
        // 2 -> 0 still joins {0, 2}.
        let g = Graph::from_edges(3, &[(2, 0)], None);
        assert_eq!(wcc_serial(&g), vec![0, 1, 0]);
        assert_eq!(wcc(&g, &BspEngine::serial()), vec![0, 1, 0]);
    }

    #[test]
    fn isolated_vertices_self_labelled() {
        let g = Graph::from_edges(3, &[], None);
        assert_eq!(wcc_serial(&g), vec![0, 1, 2]);
        assert_eq!(wcc(&g, &BspEngine::serial()), vec![0, 1, 2]);
    }

    #[test]
    fn bsp_matches_serial_on_random_graphs() {
        for seed in 0..3 {
            let mut rng = RngStream::new(seed, "wcc");
            let g = erdos_renyi(400, 600, &mut rng);
            let reference = wcc_serial(&g);
            assert_eq!(wcc(&g, &BspEngine::serial()), reference);
            assert_eq!(wcc(&g, &BspEngine::parallel(4)), reference);
        }
    }
}
