//! PageRank (Graphalytics algorithm 2), with dangling-mass redistribution.

use crate::bsp::{BspEngine, Outbox, VertexProgram};
use crate::graph::{Graph, VertexId};

/// Damping factor used by Graphalytics.
pub const DAMPING: f64 = 0.85;

/// Serial reference PageRank: `iterations` synchronous power iterations,
/// dangling mass redistributed uniformly.
pub fn pagerank_serial(graph: &Graph, iterations: usize) -> Vec<f64> {
    let n = graph.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for v in graph.vertices() {
            let d = graph.out_degree(v);
            if d == 0 {
                dangling += rank[v as usize];
            } else {
                let share = rank[v as usize] / d as f64;
                for &t in graph.neighbors(v) {
                    next[t as usize] += share;
                }
            }
        }
        let base = (1.0 - DAMPING) / n as f64 + DAMPING * dangling / n as f64;
        for x in next.iter_mut() {
            *x = base + DAMPING * *x;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// The vertex-centric PageRank program (fixed iteration count).
pub struct PageRankProgram {
    /// Number of power iterations.
    pub iterations: usize,
}

impl VertexProgram for PageRankProgram {
    type State = f64;
    type Message = f64;

    fn init(&self, _v: VertexId, graph: &Graph) -> f64 {
        1.0 / graph.vertex_count().max(1) as f64
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut f64,
        messages: &[f64],
        outbox: &mut Outbox<'_, f64>,
        graph: &Graph,
        superstep: usize,
        prev_aggregate: f64,
    ) {
        let n = graph.vertex_count().max(1) as f64;
        if superstep > 0 {
            // Messages are deterministic in thread order; sum as delivered.
            let incoming: f64 = messages.iter().sum();
            *state = (1.0 - DAMPING) / n
                + DAMPING * (incoming + prev_aggregate / n);
        }
        if superstep < self.iterations {
            // A zero-valued self-message keeps every vertex active each
            // superstep, matching the synchronous power-iteration semantics
            // even for vertices without in-edges.
            outbox.send(v, 0.0);
            let d = graph.out_degree(v);
            if d == 0 {
                // Dangling: publish the rank to the global aggregate.
                outbox.aggregate(*state);
            } else {
                let share = *state / d as f64;
                for &t in graph.neighbors(v) {
                    outbox.send(t, share);
                }
            }
        }
    }
}

/// BSP PageRank on `engine`; matches [`pagerank_serial`] to float tolerance.
pub fn pagerank(graph: &Graph, iterations: usize, engine: &BspEngine) -> Vec<f64> {
    engine.run(graph, &PageRankProgram { iterations }).states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat;
    use mcs_simcore::rng::RngStream;

    #[test]
    fn ranks_sum_to_one_serial() {
        let mut rng = RngStream::new(1, "pr");
        let g = rmat(8, 8, (0.57, 0.19, 0.19), &mut rng);
        let r = pagerank_serial(&g, 30);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn star_center_has_highest_rank() {
        // Edges point into vertex 0.
        let edges: Vec<(u32, u32)> = (1..10).map(|i| (i, 0)).collect();
        let g = Graph::from_edges(10, &edges, None);
        let r = pagerank_serial(&g, 50);
        let max_v = (0..10).max_by(|&a, &b| r[a].partial_cmp(&r[b]).unwrap()).unwrap();
        assert_eq!(max_v, 0);
    }

    #[test]
    fn bsp_matches_serial() {
        let mut rng = RngStream::new(2, "pr");
        let g = rmat(8, 8, (0.57, 0.19, 0.19), &mut rng);
        let reference = pagerank_serial(&g, 20);
        for engine in [BspEngine::serial(), BspEngine::parallel(4)] {
            let bsp = pagerank(&g, 20, &engine);
            for (a, b) in bsp.iter().zip(&reference) {
                assert!((a - b).abs() < 1e-9, "bsp {a} vs serial {b}");
            }
        }
    }

    #[test]
    fn dangling_mass_not_lost() {
        // 0 -> 1, 1 dangling.
        let g = Graph::from_edges(2, &[(0, 1)], None);
        let r = pagerank_serial(&g, 100);
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let b = pagerank(&g, 100, &BspEngine::serial());
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{b:?}");
    }

    #[test]
    fn two_iterations_hand_checked() {
        // 0 <-> 1: symmetric, ranks stay 0.5.
        let g = Graph::from_edges(2, &[(0, 1), (1, 0)], None);
        let r = pagerank_serial(&g, 2);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 0.5).abs() < 1e-12);
    }
}
