//! Local clustering coefficient (Graphalytics algorithm 5): for each
//! vertex, the fraction of pairs of its neighbors that are themselves
//! connected, computed on the undirected view.

use crate::graph::{Graph, VertexId};

/// Serial reference LCC.
pub fn lcc_serial(graph: &Graph) -> Vec<f64> {
    let u = graph.undirected();
    (0..u.vertex_count()).map(|v| lcc_of(&u, v)).collect()
}

/// LCC computed in parallel over vertices with `threads` workers;
/// deterministic because vertices are independent.
pub fn lcc_parallel(graph: &Graph, threads: usize) -> Vec<f64> {
    let u = graph.undirected();
    let n = u.vertex_count() as usize;
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    let chunk = n.div_ceil(threads);
    let mut out = vec![0.0f64; n];
    std::thread::scope(|scope| {
        for (tid, slot) in out.chunks_mut(chunk).enumerate() {
            let u_ref = &u;
            scope.spawn(move || {
                for (i, value) in slot.iter_mut().enumerate() {
                    *value = lcc_of(u_ref, (tid * chunk + i) as VertexId);
                }
            });
        }
    });
    out
}

/// LCC of one vertex on an already-undirected graph: triangles through `v`
/// divided by `deg * (deg - 1) / 2`.
fn lcc_of(u: &Graph, v: VertexId) -> f64 {
    let neigh: Vec<VertexId> =
        u.neighbors(v).iter().copied().filter(|&t| t != v).collect();
    let d = neigh.len();
    if d < 2 {
        return 0.0;
    }
    let mut links = 0u64;
    for (i, &a) in neigh.iter().enumerate() {
        let a_neigh = u.neighbors(a);
        for &b in &neigh[i + 1..] {
            if a_neigh.binary_search(&b).is_ok() {
                links += 1;
            }
        }
    }
    2.0 * links as f64 / (d as f64 * (d - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::preferential_attachment;
    use mcs_simcore::rng::RngStream;

    #[test]
    fn triangle_is_fully_clustered() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)], None);
        let lcc = lcc_serial(&g);
        assert!(lcc.iter().all(|&c| (c - 1.0).abs() < 1e-12), "{lcc:?}");
    }

    #[test]
    fn star_center_unclustered() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)], None);
        let lcc = lcc_serial(&g);
        assert_eq!(lcc[0], 0.0); // no neighbor pairs connected
        assert_eq!(lcc[1], 0.0); // degree 1
    }

    #[test]
    fn square_with_diagonal() {
        // 0-1-2-3-0 plus diagonal 0-2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)], None);
        let lcc = lcc_serial(&g);
        // Vertex 1: neighbors {0, 2}, connected: LCC 1.0.
        assert!((lcc[1] - 1.0).abs() < 1e-12);
        // Vertex 0: neighbors {1, 2, 3}; pairs (1,2) yes, (1,3) no, (2,3) yes.
        assert!((lcc[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = RngStream::new(1, "lcc");
        let g = preferential_attachment(500, 3, &mut rng);
        let reference = lcc_serial(&g);
        for threads in [2, 4] {
            assert_eq!(lcc_parallel(&g, threads), reference);
        }
    }

    #[test]
    fn self_loops_ignored() {
        let g = Graph::from_edges(3, &[(0, 0), (0, 1), (1, 2), (2, 0)], None);
        let lcc = lcc_serial(&g);
        assert!((lcc[0] - 1.0).abs() < 1e-12, "{lcc:?}");
    }
}
