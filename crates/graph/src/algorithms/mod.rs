//! The six Graphalytics algorithms \[42\], each as a serial reference and a
//! BSP vertex program: BFS, PageRank, WCC, CDLP, LCC, SSSP.

pub mod bfs;
pub mod cdlp;
pub mod lcc;
pub mod pagerank;
pub mod sssp;
pub mod wcc;

pub use bfs::{bfs, bfs_serial, BfsProgram};
pub use cdlp::{cdlp, cdlp_serial, CdlpProgram};
pub use lcc::{lcc_parallel, lcc_serial};
pub use pagerank::{pagerank, pagerank_serial, PageRankProgram, DAMPING};
pub use sssp::{sssp, sssp_serial, SsspProgram};
pub use wcc::{wcc, wcc_serial, WccProgram};
