//! A Pregel-style vertex-centric BSP engine.
//!
//! The paper's Figure 1 singles out the Pregel programming model as a
//! canonical sub-ecosystem of big-data processing; this engine provides the
//! "think like a vertex" model: supersteps, message passing, implicit
//! vote-to-halt (a vertex is computed only when it has messages, after
//! superstep 0), plus a global f64 aggregator.
//!
//! Execution is parallel (std scoped threads over vertex chunks) yet
//! deterministic: chunk boundaries are fixed, and per-vertex inboxes are
//! assembled by scanning thread outboxes in thread order.

use crate::graph::{Graph, VertexId};

/// One worker thread's superstep output: its message buffer, its aggregator
/// contribution, and how many of its vertices were active.
type ThreadOutbox<M> = (Vec<(VertexId, M)>, f64, u64);

/// Where a vertex writes its outgoing messages and aggregator contribution.
#[derive(Debug)]
pub struct Outbox<'a, M> {
    buf: &'a mut Vec<(VertexId, M)>,
    aggregate: &'a mut f64,
}

impl<'a, M> Outbox<'a, M> {
    /// Sends `msg` to `target`, to be delivered next superstep.
    pub fn send(&mut self, target: VertexId, msg: M) {
        self.buf.push((target, msg));
    }

    /// Adds to the global aggregate, visible to every vertex next superstep.
    pub fn aggregate(&mut self, value: f64) {
        *self.aggregate += value;
    }
}

/// A vertex-centric program.
pub trait VertexProgram: Sync {
    /// Per-vertex state.
    type State: Clone + Send;
    /// Message type.
    type Message: Clone + Send + Sync;

    /// Initial state of `v`.
    fn init(&self, v: VertexId, graph: &Graph) -> Self::State;

    /// One superstep of `v`. Called for every vertex at superstep 0 (with no
    /// messages) and afterwards only for vertices with incoming messages.
    /// `prev_aggregate` is the aggregator sum of the previous superstep.
    #[allow(clippy::too_many_arguments)]
    fn compute(
        &self,
        v: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        outbox: &mut Outbox<'_, Self::Message>,
        graph: &Graph,
        superstep: usize,
        prev_aggregate: f64,
    );
}

impl<P: VertexProgram> VertexProgram for &P {
    type State = P::State;
    type Message = P::Message;

    fn init(&self, v: VertexId, graph: &Graph) -> Self::State {
        (**self).init(v, graph)
    }

    fn compute(
        &self,
        v: VertexId,
        state: &mut Self::State,
        messages: &[Self::Message],
        outbox: &mut Outbox<'_, Self::Message>,
        graph: &Graph,
        superstep: usize,
        prev_aggregate: f64,
    ) {
        (**self).compute(v, state, messages, outbox, graph, superstep, prev_aggregate)
    }
}

/// The BSP execution engine.
#[derive(Debug, Clone, Copy)]
pub struct BspEngine {
    /// Worker threads (1 = serial execution).
    pub threads: usize,
    /// Hard cap on supersteps (protects non-converging programs).
    pub max_supersteps: usize,
}

impl Default for BspEngine {
    fn default() -> Self {
        BspEngine { threads: 1, max_supersteps: 10_000 }
    }
}

/// The result of a BSP run.
#[derive(Debug, Clone)]
pub struct BspResult<S> {
    /// Final per-vertex states, indexed by vertex id.
    pub states: Vec<S>,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Total messages delivered.
    pub messages: u64,
}

impl BspEngine {
    /// A serial engine (fully deterministic baseline).
    pub fn serial() -> Self {
        BspEngine { threads: 1, ..Default::default() }
    }

    /// A parallel engine with `threads` workers.
    pub fn parallel(threads: usize) -> Self {
        BspEngine { threads: threads.max(1), ..Default::default() }
    }

    /// Runs `program` on `graph` until quiescence (no messages sent) or the
    /// superstep cap. Equivalent to driving a [`BspStepper`] to completion.
    pub fn run<P: VertexProgram>(&self, graph: &Graph, program: &P) -> BspResult<P::State> {
        let mut stepper = BspStepper::new(*self, graph, program);
        while stepper.step().is_some() {}
        stepper.finish()
    }
}

/// Statistics of one executed superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepStats {
    /// Zero-based index of the superstep that just ran.
    pub superstep: usize,
    /// Vertices whose `compute` was invoked this superstep.
    pub active_vertices: u64,
    /// Messages produced by this superstep (delivered in the next one).
    pub messages_sent: u64,
}

/// A paused BSP run that executes one superstep per [`BspStepper::step`]
/// call, so callers (e.g. a discrete-event actor charging virtual time per
/// superstep) can interleave other work between barriers. [`BspEngine::run`]
/// is a loop over this type.
///
/// The program is held *by value*; pass `&program` (every `&P` is itself a
/// [`VertexProgram`]) to borrow instead.
pub struct BspStepper<'g, P: VertexProgram> {
    graph: &'g Graph,
    program: P,
    threads: usize,
    chunk: usize,
    max_supersteps: usize,
    states: Vec<P::State>,
    inbox: Vec<Vec<P::Message>>,
    prev_aggregate: f64,
    total_messages: u64,
    superstep: usize,
    halted: bool,
}

impl<'g, P: VertexProgram> BspStepper<'g, P> {
    /// Initialises per-vertex state for `program` on `graph` without running
    /// any superstep yet.
    pub fn new(engine: BspEngine, graph: &'g Graph, program: P) -> Self {
        let n = graph.vertex_count() as usize;
        let states: Vec<P::State> = graph.vertices().map(|v| program.init(v, graph)).collect();
        let threads = engine.threads.max(1).min(n.max(1));
        BspStepper {
            graph,
            program,
            threads,
            chunk: n.div_ceil(threads).max(1),
            max_supersteps: engine.max_supersteps,
            states,
            inbox: (0..n).map(|_| Vec::new()).collect(),
            prev_aggregate: 0.0,
            total_messages: 0,
            superstep: 0,
            halted: n == 0,
        }
    }

    /// True once the run has quiesced (or hit the superstep cap).
    pub fn is_done(&self) -> bool {
        self.halted || self.superstep >= self.max_supersteps
    }

    /// Supersteps executed so far.
    pub fn supersteps(&self) -> usize {
        self.superstep
    }

    /// Total messages delivered so far.
    pub fn messages(&self) -> u64 {
        self.total_messages
    }

    /// Executes one superstep (compute + deliver barrier); returns `None`
    /// once the run is complete.
    pub fn step(&mut self) -> Option<StepStats> {
        if self.is_done() {
            return None;
        }
        let superstep = self.superstep;
        let prev_aggregate = self.prev_aggregate;
        let (program, graph, chunk) = (&self.program, self.graph, self.chunk);

        // Compute phase: each thread owns a chunk of vertices.
        let outboxes: Vec<ThreadOutbox<P::Message>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            for (tid, (state_chunk, inbox_chunk)) in
                self.states.chunks_mut(chunk).zip(self.inbox.chunks(chunk)).enumerate()
            {
                handles.push(scope.spawn(move || {
                    let mut buf = Vec::new();
                    let mut agg = 0.0f64;
                    let mut active = 0u64;
                    for (i, st) in state_chunk.iter_mut().enumerate() {
                        let v = (tid * chunk + i) as VertexId;
                        let msgs = &inbox_chunk[i];
                        if superstep == 0 || !msgs.is_empty() {
                            active += 1;
                            let mut outbox = Outbox { buf: &mut buf, aggregate: &mut agg };
                            program.compute(
                                v,
                                st,
                                msgs,
                                &mut outbox,
                                graph,
                                superstep,
                                prev_aggregate,
                            );
                        }
                    }
                    (buf, agg, active)
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });

        // Deliver phase: scan outboxes in thread order (deterministic).
        for slot in &mut self.inbox {
            slot.clear();
        }
        let mut sent = 0u64;
        let mut aggregate = 0.0f64;
        let mut active_vertices = 0u64;
        for (buf, agg, active) in outboxes {
            aggregate += agg;
            active_vertices += active;
            for (target, msg) in buf {
                self.inbox[target as usize].push(msg);
                sent += 1;
            }
        }
        self.total_messages += sent;
        self.prev_aggregate = aggregate;
        self.superstep += 1;
        if sent == 0 {
            self.halted = true;
        }
        Some(StepStats { superstep, active_vertices, messages_sent: sent })
    }

    /// Consumes the stepper, yielding the final [`BspResult`].
    pub fn finish(self) -> BspResult<P::State> {
        BspResult {
            states: self.states,
            supersteps: self.superstep,
            messages: self.total_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::erdos_renyi;
    use mcs_simcore::rng::RngStream;

    /// Flood: every vertex learns the minimum vertex id in its component.
    struct MinFlood;
    impl VertexProgram for MinFlood {
        type State = u32;
        type Message = u32;
        fn init(&self, v: VertexId, _g: &Graph) -> u32 {
            v
        }
        fn compute(
            &self,
            _v: VertexId,
            state: &mut u32,
            messages: &[u32],
            outbox: &mut Outbox<'_, u32>,
            graph: &Graph,
            superstep: usize,
            _agg: f64,
        ) {
            let incoming = messages.iter().copied().min();
            let improved = match incoming {
                Some(m) if m < *state => {
                    *state = m;
                    true
                }
                _ => false,
            };
            if superstep == 0 || improved {
                for &t in graph.neighbors(_v) {
                    outbox.send(t, *state);
                }
            }
        }
    }

    fn ring(n: u32) -> Graph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges, None)
    }

    #[test]
    fn min_flood_on_ring_converges_to_zero() {
        let g = ring(10).undirected();
        let result = BspEngine::serial().run(&g, &MinFlood);
        assert!(result.states.iter().all(|&s| s == 0));
        assert!(result.supersteps <= 10);
        assert!(result.messages > 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = RngStream::new(1, "bsp");
        let g = erdos_renyi(500, 2_000, &mut rng).undirected();
        let serial = BspEngine::serial().run(&g, &MinFlood);
        for threads in [2, 4, 8] {
            let par = BspEngine::parallel(threads).run(&g, &MinFlood);
            assert_eq!(par.states, serial.states, "threads = {threads}");
            assert_eq!(par.supersteps, serial.supersteps);
        }
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[], None);
        let r = BspEngine::serial().run(&g, &MinFlood);
        assert!(r.states.is_empty());
        assert_eq!(r.supersteps, 0);
    }

    /// Aggregator check: counts vertices each superstep for 3 supersteps.
    struct CountThree;
    impl VertexProgram for CountThree {
        type State = f64;
        type Message = ();
        fn init(&self, _v: VertexId, _g: &Graph) -> f64 {
            -1.0
        }
        fn compute(
            &self,
            v: VertexId,
            state: &mut f64,
            _messages: &[()],
            outbox: &mut Outbox<'_, ()>,
            _graph: &Graph,
            superstep: usize,
            prev_aggregate: f64,
        ) {
            *state = prev_aggregate;
            outbox.aggregate(1.0);
            if superstep < 2 {
                outbox.send(v, ()); // keep self alive
            }
        }
    }

    #[test]
    fn aggregator_sums_across_threads() {
        let g = ring(100);
        for threads in [1, 4] {
            let r = BspEngine::parallel(threads).run(&g, &CountThree);
            // In the last superstep every vertex saw the previous count (100).
            assert!(
                r.states.iter().all(|&s| (s - 100.0).abs() < 1e-9),
                "threads {threads}: {:?}",
                &r.states[..3]
            );
        }
    }

    #[test]
    fn stepper_matches_monolithic_run_with_sane_stats() {
        let mut rng = RngStream::new(3, "bsp-step");
        let g = erdos_renyi(300, 1_200, &mut rng).undirected();
        let reference = BspEngine::parallel(4).run(&g, &MinFlood);
        let mut stepper = BspStepper::new(BspEngine::parallel(4), &g, &MinFlood);
        let mut stats = Vec::new();
        while let Some(s) = stepper.step() {
            stats.push(s);
        }
        assert!(stepper.is_done());
        let result = stepper.finish();
        assert_eq!(result.states, reference.states);
        assert_eq!(result.supersteps, reference.supersteps);
        assert_eq!(result.messages, reference.messages);
        // Superstep 0 computes every vertex; the tail superstep is quiet.
        assert_eq!(stats[0].active_vertices, 300);
        assert_eq!(stats.last().unwrap().messages_sent, 0);
        assert_eq!(stats.len(), reference.supersteps);
        let sent: u64 = stats.iter().map(|s| s.messages_sent).sum();
        assert_eq!(sent, reference.messages);
    }

    #[test]
    fn superstep_cap_stops_nonconverging_programs() {
        struct Forever;
        impl VertexProgram for Forever {
            type State = ();
            type Message = ();
            fn init(&self, _v: VertexId, _g: &Graph) {}
            fn compute(
                &self,
                v: VertexId,
                _s: &mut (),
                _m: &[()],
                outbox: &mut Outbox<'_, ()>,
                _g: &Graph,
                _ss: usize,
                _agg: f64,
            ) {
                outbox.send(v, ());
            }
        }
        let g = ring(4);
        let engine = BspEngine { threads: 1, max_supersteps: 17 };
        let r = engine.run(&g, &Forever);
        assert_eq!(r.supersteps, 17);
    }
}
