//! # mcs-graph — generalized graph processing
//!
//! The substrate for the paper's §6.6 use case ("Generalized Graph
//! Processing for the Modern Society") and the Pregel sub-ecosystem of
//! Figure 1: CSR graph storage, synthetic generators (Erdős–Rényi, R-MAT,
//! preferential attachment), a deterministic parallel BSP/Pregel engine,
//! the six LDBC Graphalytics algorithms with serial references, and a
//! Graphalytics-style benchmark harness.
//!
//! ## Example
//! ```
//! use mcs_graph::prelude::*;
//! use mcs_simcore::rng::RngStream;
//!
//! let mut rng = RngStream::new(7, "example");
//! let g = erdos_renyi(100, 400, &mut rng);
//! let depths = bfs(&g, 0, &BspEngine::parallel(2));
//! assert_eq!(depths.len(), 100);
//! assert_eq!(depths[0], 0);
//! ```

pub mod actor;
pub mod algorithms;
pub mod bsp;
pub mod generate;
pub mod graph;
pub mod graphalytics;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::actor::{run_graph_standalone, BspActor, GraphConfig, GraphMsg};
    pub use crate::algorithms::{
        bfs, bfs_serial, cdlp, cdlp_serial, lcc_parallel, lcc_serial, pagerank,
        pagerank_serial, sssp, sssp_serial, wcc, wcc_serial,
    };
    pub use crate::bsp::{BspEngine, BspResult, BspStepper, Outbox, StepStats, VertexProgram};
    pub use crate::generate::{
        erdos_renyi, preferential_attachment, rmat, with_random_weights,
    };
    pub use crate::graph::{Graph, VertexId};
    pub use crate::graphalytics::{run_algorithm, run_suite, strong_scalability, Algorithm, BenchmarkRow};
}
