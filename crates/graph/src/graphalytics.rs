//! A Graphalytics-style benchmark harness.
//!
//! LDBC Graphalytics \[42\] — created by the paper's authors — scores
//! graph-processing platforms by runtime and EVPS (edges+vertices per
//! second) per algorithm, plus scalability and robustness (variability
//! across repetitions). This harness runs the six algorithms over a graph
//! and reports those rows.

use crate::algorithms::{bfs, cdlp, lcc_parallel, pagerank, sssp, wcc};
use crate::bsp::BspEngine;
use crate::graph::Graph;
use std::time::Instant;

/// The six benchmark algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Breadth-first search.
    Bfs,
    /// PageRank (fixed iterations).
    PageRank,
    /// Weakly connected components.
    Wcc,
    /// Community detection by label propagation.
    Cdlp,
    /// Local clustering coefficient.
    Lcc,
    /// Single-source shortest paths.
    Sssp,
}

impl Algorithm {
    /// All six, in Graphalytics order.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Bfs,
        Algorithm::PageRank,
        Algorithm::Wcc,
        Algorithm::Cdlp,
        Algorithm::Lcc,
        Algorithm::Sssp,
    ];

    /// Stable lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bfs => "bfs",
            Algorithm::PageRank => "pagerank",
            Algorithm::Wcc => "wcc",
            Algorithm::Cdlp => "cdlp",
            Algorithm::Lcc => "lcc",
            Algorithm::Sssp => "sssp",
        }
    }
}

/// One benchmark measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRow {
    /// Which algorithm ran.
    pub algorithm: Algorithm,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock processing time, seconds.
    pub runtime_secs: f64,
    /// Edges+vertices per second (the Graphalytics throughput metric).
    pub evps: f64,
}

/// Runs one algorithm on `graph` with `threads` workers and measures it.
pub fn run_algorithm(graph: &Graph, algorithm: Algorithm, threads: usize) -> BenchmarkRow {
    let engine = BspEngine::parallel(threads);
    let start = Instant::now();
    match algorithm {
        Algorithm::Bfs => {
            let _ = bfs(graph, 0, &engine);
        }
        Algorithm::PageRank => {
            let _ = pagerank(graph, 10, &engine);
        }
        Algorithm::Wcc => {
            let _ = wcc(graph, &engine);
        }
        Algorithm::Cdlp => {
            let _ = cdlp(graph, 10, &engine);
        }
        Algorithm::Lcc => {
            let _ = lcc_parallel(graph, threads);
        }
        Algorithm::Sssp => {
            let _ = sssp(graph, 0, &engine);
        }
    }
    let runtime_secs = start.elapsed().as_secs_f64().max(1e-9);
    let ev = graph.vertex_count() as f64 + graph.edge_count() as f64;
    BenchmarkRow { algorithm, threads, runtime_secs, evps: ev / runtime_secs }
}

/// Runs the full six-algorithm suite.
pub fn run_suite(graph: &Graph, threads: usize) -> Vec<BenchmarkRow> {
    Algorithm::ALL.iter().map(|&a| run_algorithm(graph, a, threads)).collect()
}

/// Strong-scalability sweep: the same graph at increasing thread counts.
/// Returns `(threads, runtime)` rows per algorithm.
pub fn strong_scalability(
    graph: &Graph,
    algorithm: Algorithm,
    thread_counts: &[usize],
) -> Vec<BenchmarkRow> {
    thread_counts.iter().map(|&t| run_algorithm(graph, algorithm, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat;
    use mcs_simcore::rng::RngStream;

    #[test]
    fn suite_produces_all_rows() {
        let mut rng = RngStream::new(1, "ga");
        let g = rmat(8, 4, (0.57, 0.19, 0.19), &mut rng);
        let rows = run_suite(&g, 2);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.runtime_secs > 0.0);
            assert!(r.evps > 0.0);
        }
        let names: std::collections::HashSet<_> =
            rows.iter().map(|r| r.algorithm.name()).collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn scalability_rows_cover_thread_counts() {
        let mut rng = RngStream::new(2, "ga");
        let g = rmat(7, 4, (0.57, 0.19, 0.19), &mut rng);
        let rows = strong_scalability(&g, Algorithm::Bfs, &[1, 2, 4]);
        let threads: Vec<usize> = rows.iter().map(|r| r.threads).collect();
        assert_eq!(threads, vec![1, 2, 4]);
    }
}
