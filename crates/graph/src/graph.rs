//! Compressed-sparse-row graph storage.
//!
//! The substrate of the paper's "generalized graph processing" use case
//! (§6.6) and of the Graphalytics-style benchmark (C16): a compact,
//! immutable directed graph with optional edge weights, plus the undirected
//! view most analytics algorithms need.


/// Vertex identifier (dense, `0..vertex_count`).
pub type VertexId = u32;

/// An immutable directed graph in CSR form, with parallel weight storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    weights: Option<Vec<f64>>,
    vertex_count: u32,
}

impl Graph {
    /// Builds a graph from an edge list. Self-loops are kept; duplicate
    /// edges are kept (multi-graph semantics); edges are sorted per source.
    ///
    /// # Panics
    /// Panics when an endpoint is `>= vertex_count` or when `weights` is
    /// provided with a different length than `edges`.
    pub fn from_edges(
        vertex_count: u32,
        edges: &[(VertexId, VertexId)],
        weights: Option<&[f64]>,
    ) -> Self {
        if let Some(w) = weights {
            assert_eq!(w.len(), edges.len(), "one weight per edge");
        }
        let n = vertex_count as usize;
        let mut degree = vec![0u64; n];
        for &(s, t) in edges {
            assert!((s as usize) < n && (t as usize) < n, "edge endpoint out of range");
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        // Stable placement: sort edge indices by (source, target).
        let mut order: Vec<usize> = (0..edges.len()).collect();
        order.sort_by_key(|&i| edges[i]);
        let mut targets = Vec::with_capacity(edges.len());
        let mut out_weights = weights.map(|_| Vec::with_capacity(edges.len()));
        for &i in &order {
            targets.push(edges[i].1);
            if let (Some(out), Some(w)) = (&mut out_weights, weights) {
                out.push(w[i]);
            }
        }
        Graph { offsets, targets, weights: out_weights, vertex_count }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.vertex_count
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Whether edges carry weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Out-neighbors of `v`, sorted.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-edges of `v` with weights (weight 1.0 when unweighted).
    pub fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |i| {
            (self.targets[i], self.weights.as_ref().map_or(1.0, |w| w[i]))
        })
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.vertex_count
    }

    /// The reverse graph (every edge flipped), weights preserved.
    pub fn reversed(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.targets.len());
        let mut weights = self.weights.as_ref().map(|_| Vec::with_capacity(self.targets.len()));
        for v in self.vertices() {
            for (t, w) in self.edges_of(v) {
                edges.push((t, v));
                if let Some(ws) = &mut weights {
                    ws.push(w);
                }
            }
        }
        Graph::from_edges(self.vertex_count, &edges, weights.as_deref())
    }

    /// An undirected view: each edge present in both directions, then
    /// deduplicated. Weights are dropped.
    pub fn undirected(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.targets.len() * 2);
        for v in self.vertices() {
            for &t in self.neighbors(v) {
                edges.push((v, t));
                edges.push((t, v));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        Graph::from_edges(self.vertex_count, &edges, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], None)
    }

    #[test]
    fn counts_and_degrees() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert!(!g.is_weighted());
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(3, &[(0, 2), (0, 1)], None);
        assert_eq!(g.neighbors(0), &[1, 2]);
    }

    #[test]
    fn weights_follow_edge_sort() {
        let g = Graph::from_edges(3, &[(0, 2), (0, 1)], Some(&[20.0, 10.0]));
        let edges: Vec<(u32, f64)> = g.edges_of(0).collect();
        assert_eq!(edges, vec![(1, 10.0), (2, 20.0)]);
    }

    #[test]
    fn reversed_flips_edges() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.neighbors(3), &[1, 2]);
        assert_eq!(r.neighbors(0), &[] as &[u32]);
        assert_eq!(r.edge_count(), 4);
    }

    #[test]
    fn undirected_symmetrizes() {
        let g = diamond();
        let u = g.undirected();
        assert_eq!(u.neighbors(0), &[1, 2]);
        assert_eq!(u.neighbors(3), &[1, 2]);
        assert_eq!(u.edge_count(), 8);
        // Deduplicated: adding the reverse of an existing edge changes nothing.
        let g2 = Graph::from_edges(2, &[(0, 1), (1, 0)], None);
        assert_eq!(g2.undirected().edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = Graph::from_edges(2, &[(0, 2)], None);
    }

    #[test]
    #[should_panic(expected = "one weight per edge")]
    fn weight_length_mismatch_rejected() {
        let _ = Graph::from_edges(2, &[(0, 1)], Some(&[1.0, 2.0]));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(0, &[], None);
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
