//! Graph analytics as a discrete-event actor.
//!
//! [`BspActor`] runs graphalytics queries on the engine: each query is a
//! real BSP computation (driven through [`BspStepper`], so the per-superstep
//! work profile is exact, not modeled), replayed over virtual time one
//! superstep per engine message. Superstep durations follow the measured
//! active-vertex and message counts, stretched by worker loss (fanned in
//! from a scenario-level failure injector) and by co-tenant network
//! pressure (a big-data shuffle window opened via [`GraphMsg::Pressure`]) —
//! the supersteps that run slowed are the *stragglers* the Graphalytics
//! robustness metric counts.
//!
//! Everything lands on the shared trace under component `"graph"`, so
//! superstep latencies, straggler counts, and query makespans are computed
//! from traces alone.

use crate::algorithms::{BfsProgram, CdlpProgram, PageRankProgram, WccProgram};
use crate::bsp::{BspEngine, BspStepper, StepStats};
use crate::generate::erdos_renyi;
use crate::graph::Graph;
use crate::graphalytics::Algorithm;
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope, Simulation};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::{payload, TraceBus};

/// Configuration of the graph-analytics subsystem inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphConfig {
    /// Analytics queries to submit.
    pub queries: usize,
    /// Seconds between successive query submissions.
    pub submit_interval_secs: f64,
    /// Vertices of the (shared) input graph.
    pub vertices: u32,
    /// Edges of the input graph.
    pub edges: u64,
    /// PageRank power iterations.
    pub pagerank_iterations: usize,
    /// CDLP propagation rounds.
    pub cdlp_iterations: usize,
    /// Fixed barrier/coordination cost per superstep, seconds.
    pub barrier_secs: f64,
    /// Compute seconds per thousand active vertices.
    pub secs_per_k_active: f64,
    /// Communication seconds per thousand BSP messages.
    pub secs_per_k_messages: f64,
    /// Superstep slowdown multiplier while co-tenant network pressure
    /// (e.g. a big-data shuffle window) is on.
    pub pressure_slowdown: f64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            queries: 8,
            submit_interval_secs: 900.0,
            vertices: 2_000,
            edges: 8_000,
            pagerank_iterations: 10,
            cdlp_iterations: 5,
            barrier_secs: 2.0,
            secs_per_k_active: 6.0,
            secs_per_k_messages: 3.0,
            pressure_slowdown: 1.8,
        }
    }
}

/// The BSP algorithms the actor rotates queries over (the subset of the
/// Graphalytics six with a vertex-centric program).
const ROTATION: [Algorithm; 4] =
    [Algorithm::Bfs, Algorithm::PageRank, Algorithm::Wcc, Algorithm::Cdlp];

/// The graph actor's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMsg {
    /// Kick-off: submit all queries on the configured cadence.
    Start,
    /// Query `.0` enters the system: profile it and start superstep 0.
    Submit(usize),
    /// Query `.0`'s current superstep hit its barrier.
    SuperstepDone(usize),
    /// A BSP worker node died (from the scenario failure injector).
    NodeFail(u32),
    /// A worker came back.
    NodeRepair(u32),
    /// Co-tenant network pressure turned on (`true`) or off (`false`).
    Pressure(bool),
}

struct QueryState {
    algorithm: Algorithm,
    steps: Vec<StepStats>,
    messages: u64,
    next: usize,
    submitted: SimTime,
    step_started: SimTime,
}

/// Runs graphalytics queries as one engine actor.
pub struct BspActor {
    config: GraphConfig,
    graph: Graph,
    workers: u32,
    dead_workers: u64,
    pressure: u32,
    queries: Vec<Option<QueryState>>,
    completed: usize,
    stragglers: u64,
}

impl BspActor {
    /// Builds the actor over a fresh synthetic graph shared by all queries.
    /// The RNG stream must be dedicated to this actor (label `"graph"` by
    /// convention) so composition does not perturb other subsystems.
    pub fn new(config: GraphConfig, workers: u32, mut rng: RngStream) -> Self {
        let graph = erdos_renyi(config.vertices.max(1), config.edges, &mut rng).undirected();
        BspActor {
            config,
            graph,
            workers: workers.max(1),
            dead_workers: 0,
            pressure: 0,
            queries: Vec::new(),
            completed: 0,
            stragglers: 0,
        }
    }

    /// Queries that ran all their supersteps to completion.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Supersteps that executed slowed (worker loss or co-tenant pressure).
    pub fn stragglers(&self) -> u64 {
        self.stragglers
    }

    /// Worker-loss slowdown: losing a fraction `f` of the fleet stretches
    /// supersteps by `1 / (1 - f)`, capped at 4x (mirrors the big-data
    /// degradation model so shared failures hit both tenants comparably).
    fn degradation(&self) -> f64 {
        let alive = (self.workers as f64 - self.dead_workers as f64).max(1.0);
        (self.workers as f64 / alive).min(4.0)
    }

    /// The combined slowdown multiplier for a superstep starting now.
    fn slowdown(&self) -> f64 {
        let pressure = if self.pressure > 0 { self.config.pressure_slowdown.max(1.0) } else { 1.0 };
        self.degradation() * pressure
    }

    /// Drives the real BSP computation to completion eagerly, returning its
    /// per-superstep work profile. The *timing* is replayed over virtual
    /// time afterwards, which keeps failures/pressure affecting durations
    /// without perturbing the algorithm's result.
    fn profile(&self, algorithm: Algorithm) -> Vec<StepStats> {
        let engine = BspEngine::serial();
        fn steps<P: crate::bsp::VertexProgram>(
            engine: BspEngine,
            graph: &Graph,
            program: P,
        ) -> Vec<StepStats> {
            let mut stepper = BspStepper::new(engine, graph, program);
            let mut all = Vec::new();
            while let Some(s) = stepper.step() {
                all.push(s);
            }
            all
        }
        match algorithm {
            Algorithm::PageRank => steps(
                engine,
                &self.graph,
                PageRankProgram { iterations: self.config.pagerank_iterations },
            ),
            Algorithm::Wcc => steps(engine, &self.graph, WccProgram),
            Algorithm::Cdlp => steps(
                engine,
                &self.graph,
                CdlpProgram { iterations: self.config.cdlp_iterations },
            ),
            // BFS is also the fallback for the non-vertex-centric members
            // of the Graphalytics six (LCC, SSSP) if a caller requests them.
            _ => steps(engine, &self.graph, BfsProgram { source: 0 }),
        }
    }

    fn start<M: MessageEnvelope<GraphMsg>>(&mut self, ctx: &mut Context<'_, M>) {
        for query in 0..self.config.queries {
            let at = ctx.now()
                + SimDuration::from_secs_f64(self.config.submit_interval_secs * query as f64);
            ctx.send_at(ctx.self_id(), at, M::wrap(GraphMsg::Submit(query)));
        }
    }

    fn submit<M: MessageEnvelope<GraphMsg>>(&mut self, ctx: &mut Context<'_, M>, query: usize) {
        let algorithm = ROTATION[query % ROTATION.len()];
        let steps = self.profile(algorithm);
        let messages = steps.iter().map(|s| s.messages_sent).sum();
        ctx.emit(
            "graph",
            "query_submit",
            payload(vec![
                ("query", Json::UInt(query as u64)),
                ("algorithm", Json::Str(algorithm.name().to_owned())),
                ("supersteps", Json::UInt(steps.len() as u64)),
                ("vertices", Json::UInt(u64::from(self.graph.vertex_count()))),
                ("edges", Json::UInt(self.graph.edge_count())),
            ]),
        );
        if self.queries.len() <= query {
            self.queries.resize_with(query + 1, || None);
        }
        self.queries[query] = Some(QueryState {
            algorithm,
            steps,
            messages,
            next: 0,
            submitted: ctx.now(),
            step_started: ctx.now(),
        });
        self.start_superstep(ctx, query);
    }

    fn start_superstep<M: MessageEnvelope<GraphMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        query: usize,
    ) {
        let slowdown = self.slowdown();
        let cfg = self.config.clone();
        let Some(state) = self.queries.get_mut(query).and_then(Option::as_mut) else { return };
        let Some(stats) = state.steps.get(state.next).copied() else { return };
        state.step_started = ctx.now();
        let healthy = cfg.barrier_secs
            + cfg.secs_per_k_active * stats.active_vertices as f64 / 1_000.0
            + cfg.secs_per_k_messages * stats.messages_sent as f64 / 1_000.0;
        let secs = healthy * slowdown;
        let straggler = slowdown > 1.0;
        if straggler {
            self.stragglers += 1;
        }
        ctx.emit(
            "graph",
            "superstep_start",
            payload(vec![
                ("query", Json::UInt(query as u64)),
                ("superstep", Json::UInt(stats.superstep as u64)),
                ("active", Json::UInt(stats.active_vertices)),
                ("messages", Json::UInt(stats.messages_sent)),
                ("secs", Json::Float(secs)),
                ("slowdown", Json::Float(slowdown)),
                ("straggler", Json::Bool(straggler)),
            ]),
        );
        ctx.send_self(SimDuration::from_secs_f64(secs), M::wrap(GraphMsg::SuperstepDone(query)));
    }

    fn superstep_done<M: MessageEnvelope<GraphMsg>>(
        &mut self,
        ctx: &mut Context<'_, M>,
        query: usize,
    ) {
        let now = ctx.now();
        let Some(state) = self.queries.get_mut(query).and_then(Option::as_mut) else { return };
        let stats = state.steps[state.next];
        ctx.emit(
            "graph",
            "superstep_finish",
            payload(vec![
                ("query", Json::UInt(query as u64)),
                ("superstep", Json::UInt(stats.superstep as u64)),
                ("secs", Json::Float((now - state.step_started).as_secs_f64())),
            ]),
        );
        state.next += 1;
        if state.next < state.steps.len() {
            self.start_superstep(ctx, query);
        } else {
            let state = self.queries[query].take().expect("query state present");
            self.completed += 1;
            ctx.emit(
                "graph",
                "query_finish",
                payload(vec![
                    ("query", Json::UInt(query as u64)),
                    ("algorithm", Json::Str(state.algorithm.name().to_owned())),
                    ("makespan_secs", Json::Float((now - state.submitted).as_secs_f64())),
                    ("supersteps", Json::UInt(state.steps.len() as u64)),
                    ("bsp_messages", Json::UInt(state.messages)),
                ]),
            );
        }
    }

    fn node_fail<M: MessageEnvelope<GraphMsg>>(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if node >= self.workers {
            return;
        }
        self.dead_workers += 1;
        ctx.emit(
            "graph",
            "worker_fail",
            payload(vec![
                ("worker", Json::UInt(u64::from(node))),
                ("degradation", Json::Float(self.degradation())),
            ]),
        );
    }

    fn node_repair<M: MessageEnvelope<GraphMsg>>(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if node >= self.workers || self.dead_workers == 0 {
            return;
        }
        self.dead_workers -= 1;
        ctx.emit("graph", "worker_repair", payload(vec![("worker", Json::UInt(u64::from(node)))]));
    }

    fn set_pressure<M: MessageEnvelope<GraphMsg>>(&mut self, ctx: &mut Context<'_, M>, on: bool) {
        if on {
            self.pressure += 1;
        } else {
            self.pressure = self.pressure.saturating_sub(1);
        }
        ctx.emit(
            "graph",
            "pressure",
            payload(vec![("windows", Json::UInt(u64::from(self.pressure)))]),
        );
    }
}

impl<M: MessageEnvelope<GraphMsg>> Actor<M> for BspActor {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            GraphMsg::Start => self.start(ctx),
            GraphMsg::Submit(query) => self.submit(ctx, query),
            GraphMsg::SuperstepDone(query) => self.superstep_done(ctx, query),
            GraphMsg::NodeFail(node) => self.node_fail(ctx, node),
            GraphMsg::NodeRepair(node) => self.node_repair(ctx, node),
            GraphMsg::Pressure(on) => self.set_pressure(ctx, on),
        }
    }
}

/// Runs graph analytics standalone on a single-actor simulation — the thin
/// wrapper equivalent of composing [`BspActor`] into a scenario. Returns the
/// trace; every metric is derived from it.
pub fn run_graph_standalone(
    config: &GraphConfig,
    workers: u32,
    seed: u64,
    horizon: SimTime,
) -> TraceBus {
    let mut actor = BspActor::new(config.clone(), workers, RngStream::new(seed, "graph"));
    let mut sim: Simulation<'_, GraphMsg> = Simulation::new(seed);
    sim.set_horizon(horizon);
    let id = sim.add_actor(&mut actor);
    sim.schedule(SimTime::ZERO, id, GraphMsg::Start);
    sim.run();
    sim.take_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3600;

    fn small() -> GraphConfig {
        GraphConfig { queries: 4, vertices: 300, edges: 1_200, ..GraphConfig::default() }
    }

    #[test]
    fn standalone_run_completes_all_queries_and_traces_supersteps() {
        let config = small();
        let trace = run_graph_standalone(&config, 16, 7, SimTime::from_secs(12 * HOUR));
        assert_eq!(trace.count("graph", "query_submit"), config.queries);
        assert_eq!(trace.count("graph", "query_finish"), config.queries);
        assert_eq!(
            trace.count("graph", "superstep_start"),
            trace.count("graph", "superstep_finish")
        );
        assert!(trace.count("graph", "superstep_finish") > config.queries);
        // Healthy standalone run: nothing slows down, so no stragglers.
        let stragglers = trace
            .select("graph", "superstep_start")
            .iter()
            .filter(|e| e.payload.get("straggler") == Some(&Json::Bool(true)))
            .count();
        assert_eq!(stragglers, 0);
    }

    #[test]
    fn standalone_run_is_deterministic() {
        let config = small();
        let a = run_graph_standalone(&config, 8, 11, SimTime::from_secs(8 * HOUR));
        let b = run_graph_standalone(&config, 8, 11, SimTime::from_secs(8 * HOUR));
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn worker_failures_and_pressure_make_stragglers() {
        let config = small();
        let horizon = SimTime::from_secs(12 * HOUR);

        let healthy = run_graph_standalone(&config, 8, 3, horizon);

        let mut actor = BspActor::new(config.clone(), 8, RngStream::new(3, "graph"));
        let mut sim: Simulation<'_, GraphMsg> = Simulation::new(3);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, GraphMsg::Start);
        for node in 0..3 {
            sim.schedule(SimTime::from_secs(1), id, GraphMsg::NodeFail(node));
        }
        sim.schedule(SimTime::from_secs(1), id, GraphMsg::Pressure(true));
        sim.run();
        let slowed = sim.take_trace();
        drop(sim);

        assert!(actor.stragglers() > 0);
        let last = |t: &TraceBus| t.select("graph", "query_finish").last().map(|e| e.at).unwrap();
        assert!(last(&slowed) > last(&healthy), "slowdown must stretch the critical path");
    }

    #[test]
    fn queries_rotate_over_the_bsp_algorithms() {
        let config = GraphConfig { queries: 4, ..small() };
        let trace = run_graph_standalone(&config, 8, 5, SimTime::from_secs(24 * HOUR));
        let submitted: Vec<String> = trace
            .select("graph", "query_submit")
            .iter()
            .filter_map(|e| e.field_str("algorithm").map(str::to_owned))
            .collect();
        assert_eq!(submitted, vec!["bfs", "pagerank", "wcc", "cdlp"]);
    }
}
