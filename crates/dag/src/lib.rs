//! # mcs-dag — workflows with portfolio scheduling
//!
//! The paper's portfolio-scheduling evidence (Table 4, C6 approach iv) is
//! about *workflows*: jobs whose tasks form a DAG with data flowing along
//! the precedence edges. This crate adds that workload model to the
//! ecosystem:
//!
//! - [`job::DagJob`] — a validated workflow (acyclic, weakly connected,
//!   in-range edges) of [`job::DagTask`]s joined by byte-annotated
//!   [`job::DagEdge`]s, with HEFT upward ranks and a critical-path bound.
//! - [`generate`] — deterministic generators for the canonical science
//!   shapes: chains, fork-join bags, Montage-like mosaics, LIGO-like
//!   inspiral pipelines.
//! - [`portfolio`] — [`portfolio::lookahead_makespan`], a pure simulate-ahead
//!   list scheduler, and [`portfolio::DagPortfolio`], which races candidate
//!   policies per workflow class and caches the winner.
//! - [`actor::DagActor`] — the workflow engine on the shared simulation:
//!   tasks become ready as parents finish, a [`SchedulingPolicy`] orders and
//!   places them, and edge payloads either take `bytes / reference
//!   bandwidth` (standalone) or become `mcs-net` flows via
//!   [`actor::EdgeHook`] so makespans feel contention and locality.
//!
//! The scheduling policies themselves live in `mcs_rms::policy` — the same
//! [`SchedulingPolicy`] trait drives both the batch scheduler queue and the
//! workflow engine, which is the point of the redesign.
//!
//! ```
//! use mcs_dag::prelude::*;
//! use mcs_simcore::rng::RngStream;
//!
//! let mut rng = RngStream::new(42, "dag-gen");
//! let shape = DagShape { width: 4, work: 100.0, cores: 2.0, memory_gb: 4.0, edge_bytes: 1 << 20 };
//! let dag = generate(DagClass::Montage, &shape, &mut rng);
//! let spec = DagClusterSpec { machines: 8, cores_per_machine: 8.0, memory_per_machine_gb: 32.0 };
//! let mut portfolio = DagPortfolio::standard(4);
//! let winner = portfolio.choose(DagClass::Montage, &dag, &spec, 100.0 * 1024.0 * 1024.0);
//! assert!(["heft", "greedy", "locality"].contains(&winner.name()));
//! ```
//!
//! [`SchedulingPolicy`]: mcs_rms::policy::SchedulingPolicy

pub mod actor;
pub mod generate;
pub mod job;
pub mod portfolio;

pub use actor::{DagActor, DagConfig, DagMsg, DagPolicy, EdgeHook, EdgeTransfer, DAG_COMPONENT};
pub use generate::{generate, DagClass, DagShape};
pub use job::{DagEdge, DagError, DagJob, DagTask};
pub use portfolio::{data_home, lookahead_makespan, DagClusterSpec, DagPortfolio};

/// Convenient glob-import surface: `use mcs_dag::prelude::*;`.
pub mod prelude {
    pub use crate::actor::{DagActor, DagConfig, DagMsg, DagPolicy, EdgeTransfer};
    pub use crate::generate::{generate, DagClass, DagShape};
    pub use crate::job::{DagEdge, DagJob, DagTask};
    pub use crate::portfolio::{lookahead_makespan, DagClusterSpec, DagPortfolio};
}
