//! Workflow jobs: tasks, data-annotated edges, and validation.
//!
//! A [`DagJob`] is the GWA-style workflow unit the paper's portfolio claim
//! (Table 4) is about: tasks carrying work/cores/memory, connected by
//! precedence edges annotated with the bytes the parent must ship to the
//! child. Construction validates the structure — in-range endpoints, no
//! self-loops, acyclic (Kahn's algorithm), weakly connected — so every
//! `DagJob` in circulation is schedulable by construction.

use std::fmt;

/// One task of a workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagTask {
    /// Total demand in core-seconds.
    pub work: f64,
    /// Cores the task occupies while running.
    pub cores: f64,
    /// Memory the task occupies while running, GiB.
    pub memory_gb: f64,
}

impl DagTask {
    /// Uncontended execution time on a unit-speed machine, seconds.
    pub fn exec_secs(&self) -> f64 {
        self.work / self.cores.max(1e-9)
    }
}

/// A precedence edge: `to` may not start before `from` finishes and its
/// `bytes` of output have arrived at `to`'s machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagEdge {
    /// Producing task index.
    pub from: usize,
    /// Consuming task index.
    pub to: usize,
    /// Data shipped along the edge.
    pub bytes: u64,
}

/// Why a task/edge set is not a valid workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagError {
    /// No tasks.
    Empty,
    /// An edge endpoint names a task outside `0..tasks.len()`.
    EdgeOutOfRange {
        /// Index of the offending edge.
        edge: usize,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// The looping task.
        task: usize,
    },
    /// The precedence relation contains a cycle.
    Cycle,
    /// The DAG splits into disconnected components (treated as separate
    /// jobs, which the generator should have emitted separately).
    Disconnected,
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::Empty => write!(f, "workflow has no tasks"),
            DagError::EdgeOutOfRange { edge } => {
                write!(f, "edge {edge} references a task out of range")
            }
            DagError::SelfLoop { task } => write!(f, "task {task} depends on itself"),
            DagError::Cycle => write!(f, "precedence relation contains a cycle"),
            DagError::Disconnected => write!(f, "workflow is not weakly connected"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated workflow: acyclic, weakly connected, in-range edges.
#[derive(Debug, Clone, PartialEq)]
pub struct DagJob {
    tasks: Vec<DagTask>,
    edges: Vec<DagEdge>,
    /// Per task: indices into `edges` arriving at it.
    in_edges: Vec<Vec<usize>>,
    /// Per task: indices into `edges` leaving it.
    out_edges: Vec<Vec<usize>>,
}

impl DagJob {
    /// Builds and validates a workflow.
    pub fn new(tasks: Vec<DagTask>, edges: Vec<DagEdge>) -> Result<Self, DagError> {
        if tasks.is_empty() {
            return Err(DagError::Empty);
        }
        let n = tasks.len();
        let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut out_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            if e.from >= n || e.to >= n {
                return Err(DagError::EdgeOutOfRange { edge: i });
            }
            if e.from == e.to {
                return Err(DagError::SelfLoop { task: e.from });
            }
            out_edges[e.from].push(i);
            in_edges[e.to].push(i);
        }
        let job = DagJob { tasks, edges, in_edges, out_edges };
        if job.kahn_order().is_none() {
            return Err(DagError::Cycle);
        }
        if !job.weakly_connected() {
            return Err(DagError::Disconnected);
        }
        Ok(job)
    }

    /// The tasks, by index.
    pub fn tasks(&self) -> &[DagTask] {
        &self.tasks
    }

    /// The edges, by index.
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always false: an empty task set fails validation.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Edge indices arriving at `task`.
    pub fn in_edges(&self, task: usize) -> &[usize] {
        &self.in_edges[task]
    }

    /// Edge indices leaving `task`.
    pub fn out_edges(&self, task: usize) -> &[usize] {
        &self.out_edges[task]
    }

    /// Total bytes crossing edges.
    pub fn total_edge_bytes(&self) -> u64 {
        self.edges.iter().map(|e| e.bytes).sum()
    }

    /// Kahn's algorithm; `None` on a cycle. Ties resolve in index order, so
    /// the order is deterministic.
    fn kahn_order(&self) -> Option<Vec<usize>> {
        let n = self.tasks.len();
        let mut indeg: Vec<usize> = (0..n).map(|t| self.in_edges[t].len()).collect();
        let mut order = Vec::with_capacity(n);
        let mut frontier: Vec<usize> = (0..n).filter(|&t| indeg[t] == 0).collect();
        while let Some(t) = frontier.pop() {
            order.push(t);
            for &ei in &self.out_edges[t] {
                let c = self.edges[ei].to;
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    frontier.push(c);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// A topological order of the task indices.
    pub fn topo_order(&self) -> Vec<usize> {
        self.kahn_order().expect("validated DAG cannot have a cycle")
    }

    fn weakly_connected(&self) -> bool {
        let n = self.tasks.len();
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(t) = stack.pop() {
            let neighbours = self
                .out_edges[t]
                .iter()
                .map(|&ei| self.edges[ei].to)
                .chain(self.in_edges[t].iter().map(|&ei| self.edges[ei].from));
            for nb in neighbours {
                if !seen[nb] {
                    seen[nb] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == n
    }

    /// Upward ranks at a reference bandwidth (bytes/second): a task's rank
    /// is its execution time plus the largest `(edge transfer + child
    /// rank)` over its out-edges — the classic HEFT priority. Parents
    /// strictly outrank their children.
    pub fn upward_ranks(&self, ref_bandwidth: f64) -> Vec<f64> {
        let bw = ref_bandwidth.max(1e-9);
        let mut rank = vec![0.0f64; self.tasks.len()];
        for &t in self.topo_order().iter().rev() {
            let downstream = self.out_edges[t]
                .iter()
                .map(|&ei| {
                    let e = &self.edges[ei];
                    e.bytes as f64 / bw + rank[e.to]
                })
                .fold(0.0, f64::max);
            rank[t] = self.tasks[t].exec_secs() + downstream;
        }
        rank
    }

    /// Length of the critical path (compute + reference-bandwidth
    /// transfers), seconds: the best possible makespan on infinite
    /// uncontended machines.
    pub fn critical_path_secs(&self, ref_bandwidth: f64) -> f64 {
        self.upward_ranks(ref_bandwidth).into_iter().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(work: f64) -> DagTask {
        DagTask { work, cores: 1.0, memory_gb: 1.0 }
    }

    fn edge(from: usize, to: usize, bytes: u64) -> DagEdge {
        DagEdge { from, to, bytes }
    }

    #[test]
    fn diamond_validates_and_ranks() {
        // 0 -> {1, 2} -> 3, unit bandwidth so bytes are seconds.
        let dag = DagJob::new(
            vec![task(10.0), task(20.0), task(5.0), task(10.0)],
            vec![edge(0, 1, 4), edge(0, 2, 4), edge(1, 3, 2), edge(2, 3, 2)],
        )
        .unwrap();
        let ranks = dag.upward_ranks(1.0);
        // rank(3)=10, rank(1)=20+2+10=32, rank(2)=5+2+10=17, rank(0)=10+4+32=46.
        assert_eq!(ranks, vec![46.0, 32.0, 17.0, 10.0]);
        assert_eq!(dag.critical_path_secs(1.0), 46.0);
        assert_eq!(dag.total_edge_bytes(), 12);
    }

    #[test]
    fn parents_outrank_children() {
        let dag = DagJob::new(
            vec![task(1.0), task(1.0), task(1.0)],
            vec![edge(0, 1, 0), edge(1, 2, 0)],
        )
        .unwrap();
        let ranks = dag.upward_ranks(1e6);
        for e in dag.edges() {
            assert!(ranks[e.from] > ranks[e.to]);
        }
    }

    #[test]
    fn invalid_structures_rejected() {
        assert_eq!(DagJob::new(vec![], vec![]), Err(DagError::Empty));
        assert_eq!(
            DagJob::new(vec![task(1.0)], vec![edge(0, 5, 0)]),
            Err(DagError::EdgeOutOfRange { edge: 0 })
        );
        assert_eq!(
            DagJob::new(vec![task(1.0)], vec![edge(0, 0, 0)]),
            Err(DagError::SelfLoop { task: 0 })
        );
        assert_eq!(
            DagJob::new(
                vec![task(1.0), task(1.0)],
                vec![edge(0, 1, 0), edge(1, 0, 0)]
            ),
            Err(DagError::Cycle)
        );
        assert_eq!(
            DagJob::new(vec![task(1.0), task(1.0)], vec![]),
            Err(DagError::Disconnected)
        );
    }

    #[test]
    fn topo_order_respects_edges() {
        let dag = DagJob::new(
            vec![task(1.0); 5],
            vec![edge(0, 2, 0), edge(1, 2, 0), edge(2, 3, 0), edge(2, 4, 0)],
        )
        .unwrap();
        let order = dag.topo_order();
        let pos: Vec<usize> =
            (0..5).map(|t| order.iter().position(|&x| x == t).unwrap()).collect();
        for e in dag.edges() {
            assert!(pos[e.from] < pos[e.to]);
        }
    }
}
