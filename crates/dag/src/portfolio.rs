//! Per-class portfolio scheduling for workflows.
//!
//! The paper's portfolio approach (C6, approach iv) applied to DAGs: keep a
//! portfolio of scheduling policies, forward-simulate each candidate on the
//! workflow, and run the winner. [`lookahead_makespan`] is the simulator —
//! a pure, engine-free list scheduler over an idle cluster at reference
//! bandwidth (contention-free, like every practical lookahead) — and
//! [`DagPortfolio`] caches one decision per [`DagClass`], since jobs of a
//! class share their shape and the first lookahead answers for all.

use crate::generate::DagClass;
use crate::job::DagJob;
use mcs_infra::cluster::{Cluster, ClusterId};
use mcs_infra::machine::{MachineId, MachineSpec};
use mcs_infra::resource::ResourceVector;
use mcs_rms::policy::{
    GreedyReadyPolicy, HeftPolicy, LocalityFirstPolicy, QueuedTaskView, SchedulingPolicy,
};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_workload::task::TaskId;
use std::collections::HashMap;

/// The cluster the lookahead (and the DAG driver) schedules onto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagClusterSpec {
    /// Number of machines (one per fabric node).
    pub machines: u32,
    /// Cores per machine.
    pub cores_per_machine: f64,
    /// Memory per machine, GiB.
    pub memory_per_machine_gb: f64,
}

impl DagClusterSpec {
    /// Materializes an idle cluster of this shape.
    pub fn build(&self, name: &str) -> Cluster {
        Cluster::homogeneous(
            ClusterId(0),
            name,
            MachineSpec::commodity(
                "dag-node",
                self.cores_per_machine,
                self.memory_per_machine_gb,
            ),
            self.machines.max(1),
        )
    }
}

/// Predicted makespan of `dag` under `policy` on an idle cluster, seconds.
///
/// List-schedules the whole workflow: ready tasks are ordered by the
/// policy's `compare`, placed by its `select_machine`, charged their
/// cross-machine input transfers at `ref_bandwidth`, and released on
/// completion. Returns `f64::INFINITY` when some task can never be placed.
pub fn lookahead_makespan(
    dag: &DagJob,
    cluster_spec: &DagClusterSpec,
    ref_bandwidth: f64,
    policy: &dyn SchedulingPolicy,
) -> f64 {
    let mut cluster = cluster_spec.build("dag-lookahead");
    let mut rng = RngStream::new(0x5EED, "dag-lookahead");
    let bw = ref_bandwidth.max(1e-9);
    let n = dag.len();
    let ranks = dag.upward_ranks(bw);
    let reqs: Vec<ResourceVector> =
        dag.tasks().iter().map(|t| ResourceVector::new(t.cores, t.memory_gb)).collect();
    let mut deps_left: Vec<usize> = (0..n).map(|t| dag.in_edges(t).len()).collect();
    let mut placed_on: Vec<Option<MachineId>> = vec![None; n];
    let mut ready: Vec<(usize, f64)> =
        (0..n).filter(|&t| deps_left[t] == 0).map(|t| (t, 0.0)).collect();
    let mut running: Vec<(f64, usize, MachineId)> = Vec::new();
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;
    let mut done = 0usize;
    while done < n {
        // Placement pass in policy order.
        ready.sort_by(|a, b| {
            policy.compare(&lookahead_view(dag, &reqs, &ranks, &placed_on, a), &lookahead_view(dag, &reqs, &ranks, &placed_on, b))
        });
        let mut i = 0;
        while i < ready.len() {
            let (t, ready_at) = ready[i];
            let view = lookahead_view(dag, &reqs, &ranks, &placed_on, &(t, ready_at));
            let placed = policy
                .select_machine(&cluster, &view, &mut rng)
                .filter(|&mid| cluster.machine_mut(mid).try_allocate(&reqs[t]));
            if let Some(mid) = placed {
                let xfer = dag
                    .in_edges(t)
                    .iter()
                    .map(|&ei| {
                        let e = &dag.edges()[ei];
                        if placed_on[e.from] == Some(mid) {
                            0.0
                        } else {
                            e.bytes as f64 / bw
                        }
                    })
                    .fold(0.0, f64::max);
                let speed = cluster.machine(mid).speedup_for(&reqs[t]).max(1e-9);
                let exec = dag.tasks()[t].work / (reqs[t].cpu_cores.max(1e-9) * speed);
                placed_on[t] = Some(mid);
                running.push((now.max(ready_at) + xfer + exec, t, mid));
                ready.remove(i);
            } else {
                i += 1;
            }
        }
        if running.is_empty() {
            return f64::INFINITY; // some ready task can never be placed
        }
        // Advance to the earliest completion (ties break on task index).
        let next = running
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.1.cmp(&b.1))
            })
            .map(|(i, _)| i)
            .expect("running set is non-empty");
        let (end, t, mid) = running.remove(next);
        now = end;
        makespan = makespan.max(end);
        cluster.machine_mut(mid).release(&reqs[t]);
        done += 1;
        for &ei in dag.out_edges(t) {
            let c = dag.edges()[ei].to;
            deps_left[c] -= 1;
            if deps_left[c] == 0 {
                ready.push((c, now));
            }
        }
    }
    makespan
}

fn lookahead_view<'a>(
    dag: &DagJob,
    reqs: &'a [ResourceVector],
    ranks: &[f64],
    placed_on: &[Option<MachineId>],
    entry: &(usize, f64),
) -> QueuedTaskView<'a> {
    let (t, ready_at) = *entry;
    QueuedTaskView {
        id: TaskId(t as u64),
        submit: SimTime::ZERO,
        ready_at: SimTime::ZERO + SimDuration::from_secs_f64(ready_at.max(0.0)),
        demand_left: dag.tasks()[t].work,
        req: &reqs[t],
        deadline: None,
        rank: ranks[t],
        data_home: data_home(dag, placed_on, t),
    }
}

/// The node holding the task's largest input: the placed parent with the
/// heaviest in-edge (ties go to the lowest edge index).
pub fn data_home(dag: &DagJob, placed_on: &[Option<MachineId>], task: usize) -> Option<u32> {
    dag.in_edges(task)
        .iter()
        .filter_map(|&ei| {
            let e = &dag.edges()[ei];
            placed_on[e.from].map(|mid| (e.bytes, std::cmp::Reverse(ei), mid))
        })
        .max()
        .map(|(_, _, mid)| mid.0)
}

/// Simulate-ahead portfolio over workflow scheduling policies, one cached
/// decision per workflow class.
pub struct DagPortfolio {
    candidates: Vec<Box<dyn SchedulingPolicy>>,
    chosen: HashMap<DagClass, usize>,
    decisions: Vec<(DagClass, usize)>,
}

impl DagPortfolio {
    /// The standard portfolio: HEFT, greedy ready-task, locality-first.
    pub fn standard(nodes_per_rack: u32) -> Self {
        DagPortfolio::new(vec![
            Box::new(HeftPolicy),
            Box::new(GreedyReadyPolicy),
            Box::new(LocalityFirstPolicy { nodes_per_rack }),
        ])
    }

    /// A portfolio over arbitrary candidates.
    ///
    /// # Panics
    /// Panics when `candidates` is empty.
    pub fn new(candidates: Vec<Box<dyn SchedulingPolicy>>) -> Self {
        assert!(!candidates.is_empty(), "portfolio needs at least one candidate");
        DagPortfolio { candidates, chosen: HashMap::new(), decisions: Vec::new() }
    }

    /// The candidate policies.
    pub fn candidates(&self) -> &[Box<dyn SchedulingPolicy>] {
        &self.candidates
    }

    /// The decision log: `(class, winning candidate index)` per first
    /// encounter of each class.
    pub fn decisions(&self) -> &[(DagClass, usize)] {
        &self.decisions
    }

    /// Picks the candidate for `dag` of `class`: the first job of a class
    /// pays one lookahead per candidate; subsequent jobs reuse the cached
    /// winner.
    pub fn choose(
        &mut self,
        class: DagClass,
        dag: &DagJob,
        cluster_spec: &DagClusterSpec,
        ref_bandwidth: f64,
    ) -> &dyn SchedulingPolicy {
        let i = self.choose_index(class, dag, cluster_spec, ref_bandwidth);
        self.candidates[i].as_ref()
    }

    /// Like [`DagPortfolio::choose`], returning the winning candidate's
    /// index into [`DagPortfolio::candidates`].
    pub fn choose_index(
        &mut self,
        class: DagClass,
        dag: &DagJob,
        cluster_spec: &DagClusterSpec,
        ref_bandwidth: f64,
    ) -> usize {
        if let Some(&i) = self.chosen.get(&class) {
            return i;
        }
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, cand) in self.candidates.iter().enumerate() {
            let score = lookahead_makespan(dag, cluster_spec, ref_bandwidth, cand.as_ref());
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        self.chosen.insert(class, best);
        self.decisions.push((class, best));
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, DagShape};

    fn spec() -> DagClusterSpec {
        DagClusterSpec { machines: 8, cores_per_machine: 8.0, memory_per_machine_gb: 32.0 }
    }

    fn shape() -> DagShape {
        DagShape { width: 6, work: 120.0, cores: 2.0, memory_gb: 4.0, edge_bytes: 32 << 20 }
    }

    #[test]
    fn lookahead_bounds_below_by_critical_path() {
        let mut rng = RngStream::new(11, "dag-gen");
        let bw = 100.0 * 1024.0 * 1024.0;
        for class in DagClass::ALL {
            let dag = generate(class, &shape(), &mut rng);
            // Co-located tasks skip their transfers, so the compute-only
            // critical path (infinite bandwidth) is the valid lower bound.
            let cp = dag.critical_path_secs(f64::INFINITY);
            for policy in [&HeftPolicy as &dyn SchedulingPolicy, &GreedyReadyPolicy] {
                let m = lookahead_makespan(&dag, &spec(), bw, policy);
                assert!(m.is_finite());
                assert!(m >= cp - 1e-9, "{}: {m} < critical path {cp}", class.name());
            }
        }
    }

    #[test]
    fn infeasible_task_yields_infinite_makespan() {
        let dag = crate::job::DagJob::new(
            vec![
                crate::job::DagTask { work: 10.0, cores: 64.0, memory_gb: 1.0 },
                crate::job::DagTask { work: 10.0, cores: 1.0, memory_gb: 1.0 },
            ],
            vec![crate::job::DagEdge { from: 0, to: 1, bytes: 0 }],
        )
        .unwrap();
        let m = lookahead_makespan(&dag, &spec(), 1e6, &HeftPolicy);
        assert!(m.is_infinite());
    }

    #[test]
    fn portfolio_caches_per_class() {
        let mut rng = RngStream::new(3, "dag-gen");
        let bw = 100.0 * 1024.0 * 1024.0;
        let mut p = DagPortfolio::standard(8);
        let a = generate(DagClass::Montage, &shape(), &mut rng);
        let b = generate(DagClass::Montage, &shape(), &mut rng);
        let first = p.choose(DagClass::Montage, &a, &spec(), bw).name();
        let second = p.choose(DagClass::Montage, &b, &spec(), bw).name();
        assert_eq!(first, second);
        assert_eq!(p.decisions().len(), 1, "one lookahead per class");
    }
}
