//! The workflow engine as an actor on the shared simulation.
//!
//! [`DagActor`] drives a stream of generated [`DagJob`]s: tasks become
//! ready when their parents finish, are ordered and placed by a
//! [`SchedulingPolicy`] (per-job, chosen by the configured [`DagPolicy`] —
//! fixed, or per-class via the simulate-ahead [`DagPortfolio`]), occupy
//! machine resources while their inputs cross the fabric and their work
//! burns down, and release them on completion.
//!
//! Edge data movement is pluggable: standalone, a transfer takes
//! `bytes / reference_bandwidth`; composed, the scenario installs an
//! [`EdgeHook`] that turns each transfer into an `mcs-net` flow, and the
//! flow's (contended, fault-exposed) completion delivers
//! [`DagMsg::EdgeDone`] — so workflow makespans inherit network contention
//! and locality for free.

use crate::generate::{generate, DagClass, DagShape};
use crate::job::DagJob;
use crate::portfolio::{data_home, DagClusterSpec, DagPortfolio};
use mcs_infra::cluster::Cluster;
use mcs_infra::machine::MachineId;
use mcs_infra::resource::ResourceVector;
use mcs_rms::policy::QueuedTaskView;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::error::McsError;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::Field;
use mcs_workload::task::TaskId;

/// Trace component under which all workflow events are recorded.
pub const DAG_COMPONENT: &str = "dag";

const MIB: f64 = 1024.0 * 1024.0;

/// Which policy schedules each workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DagPolicy {
    /// HEFT-like rank-based list scheduling.
    Heft,
    /// Greedy ready-task, first fit.
    Greedy,
    /// Locality-first: run tasks where their inputs live.
    Locality,
    /// Per-class portfolio: simulate the fixed candidates ahead, run the
    /// winner (the paper's C6 approach iv, applied to workflows).
    Portfolio,
}

impl DagPolicy {
    /// All modes, for sweeps.
    pub const ALL: [DagPolicy; 4] =
        [DagPolicy::Heft, DagPolicy::Greedy, DagPolicy::Locality, DagPolicy::Portfolio];

    /// A short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DagPolicy::Heft => "heft",
            DagPolicy::Greedy => "greedy",
            DagPolicy::Locality => "locality",
            DagPolicy::Portfolio => "portfolio",
        }
    }
}

/// Workflow-workload configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DagConfig {
    /// Number of workflows submitted over the run.
    pub jobs: usize,
    /// Workflow classes, cycled job-by-job.
    pub classes: Vec<DagClass>,
    /// Parallel width of each workflow (chain length for chains).
    pub width: usize,
    /// Base per-task demand, core-seconds.
    pub task_work: f64,
    /// Cores per task.
    pub task_cores: f64,
    /// Memory per task, GiB.
    pub task_memory_gb: f64,
    /// Base payload per precedence edge, MiB.
    pub edge_mb: f64,
    /// Seconds between successive workflow submissions.
    pub submit_interval_secs: f64,
    /// Scheduling mode.
    pub policy: DagPolicy,
    /// Locality domains the workload is laid out for; the scenario warns
    /// when the fabric has fewer racks than this (placement degrades to
    /// blind best-fit beyond the rack count).
    pub locality_domains: u32,
    /// Reference bandwidth for ranks and standalone transfers, MiB/s.
    pub reference_bandwidth_mbs: f64,
    /// Cores per machine of the workflow pool.
    pub cores_per_machine: f64,
    /// Memory per machine of the workflow pool, GiB.
    pub memory_per_machine_gb: f64,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            jobs: 12,
            classes: DagClass::ALL.to_vec(),
            width: 6,
            task_work: 120.0,
            task_cores: 2.0,
            task_memory_gb: 4.0,
            edge_mb: 32.0,
            submit_interval_secs: 120.0,
            policy: DagPolicy::Portfolio,
            locality_domains: 4,
            reference_bandwidth_mbs: 100.0,
            cores_per_machine: 8.0,
            memory_per_machine_gb: 32.0,
        }
    }
}

impl DagConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), McsError> {
        if self.jobs == 0 {
            return Err(McsError::invalid_config("dag.jobs", "must be at least 1"));
        }
        if self.classes.is_empty() {
            return Err(McsError::invalid_config("dag.classes", "must name at least one class"));
        }
        if self.width == 0 {
            return Err(McsError::invalid_config("dag.width", "must be at least 1"));
        }
        if !self.task_work.is_finite() || self.task_work <= 0.0 {
            return Err(McsError::invalid_config("dag.task_work", "must be positive and finite"));
        }
        if !self.task_cores.is_finite() || self.task_cores <= 0.0 {
            return Err(McsError::invalid_config("dag.task_cores", "must be positive and finite"));
        }
        if self.task_cores > self.cores_per_machine {
            return Err(McsError::invalid_config(
                "dag.task_cores",
                "exceeds cores_per_machine: no machine could ever host a task",
            ));
        }
        if self.task_memory_gb > self.memory_per_machine_gb {
            return Err(McsError::invalid_config(
                "dag.task_memory_gb",
                "exceeds memory_per_machine_gb: no machine could ever host a task",
            ));
        }
        if !self.edge_mb.is_finite() || self.edge_mb < 0.0 {
            return Err(McsError::invalid_config("dag.edge_mb", "must be non-negative and finite"));
        }
        if !self.submit_interval_secs.is_finite() || self.submit_interval_secs < 0.0 {
            return Err(McsError::invalid_config(
                "dag.submit_interval_secs",
                "must be non-negative and finite",
            ));
        }
        if self.locality_domains == 0 {
            return Err(McsError::invalid_config("dag.locality_domains", "must be at least 1"));
        }
        if !self.reference_bandwidth_mbs.is_finite() || self.reference_bandwidth_mbs <= 0.0 {
            return Err(McsError::invalid_config(
                "dag.reference_bandwidth_mbs",
                "must be positive and finite",
            ));
        }
        Ok(())
    }
}

/// Messages understood by [`DagActor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DagMsg {
    /// Bootstraps the run: schedules every workflow submission.
    Start,
    /// Workflow `j` submits.
    Submit(u32),
    /// A running task's work burned down.
    TaskDone {
        /// Workflow index.
        job: u32,
        /// Task index within the workflow.
        task: u32,
    },
    /// An edge transfer delivered its bytes (self-scheduled standalone, or
    /// routed back by the scenario's flow-completion hook).
    EdgeDone {
        /// Workflow index.
        job: u32,
        /// Edge index within the workflow.
        edge: u32,
    },
}

/// One edge transfer the scenario must route over the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeTransfer {
    /// Workflow index.
    pub job: u32,
    /// Edge index within the workflow.
    pub edge: u32,
    /// Source node (the producer's machine).
    pub src: u32,
    /// Destination node (the consumer's machine).
    pub dst: u32,
    /// Payload bytes.
    pub bytes: u64,
}

/// Transfer callback: turns an [`EdgeTransfer`] into a network flow whose
/// completion must eventually deliver the matching [`DagMsg::EdgeDone`].
pub type EdgeHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, EdgeTransfer) + 'a>;

struct JobState {
    dag: DagJob,
    class: DagClass,
    policy_idx: Option<usize>,
    submit_at: SimTime,
    reqs: Vec<ResourceVector>,
    ranks: Vec<f64>,
    deps_left: Vec<usize>,
    placed_on: Vec<Option<MachineId>>,
    pending_inputs: Vec<usize>,
    done: Vec<bool>,
    remaining: usize,
    xfer_started: Vec<Option<SimTime>>,
    transfer_secs: f64,
    stall_secs: f64,
}

#[derive(Debug, Clone, Copy)]
struct ReadyTask {
    job: u32,
    task: u32,
    ready_at: SimTime,
}

/// The workflow engine as a simulation actor.
pub struct DagActor<'a, M = DagMsg> {
    cfg: DagConfig,
    cluster: Cluster,
    spec: DagClusterSpec,
    ref_bw: f64,
    portfolio: DagPortfolio,
    jobs: Vec<JobState>,
    ready: Vec<ReadyTask>,
    rng: RngStream,
    edge_hook: Option<EdgeHook<'a, M>>,
    jobs_finished: u64,
    tasks_finished: u64,
    makespans: Vec<f64>,
    transfer_secs: f64,
    stall_secs: f64,
}

impl<'a, M: MessageEnvelope<DagMsg>> DagActor<'a, M> {
    /// Builds the actor: generates every workflow up front from `rng` (so
    /// the job set is a pure function of seed and configuration) over a
    /// pool of `machines` nodes — node ids align 1:1 with fabric nodes.
    pub fn new(machines: u32, cfg: DagConfig, rng: &mut RngStream) -> Self {
        let nodes_per_rack = machines.div_ceil(cfg.locality_domains.max(1)).max(1);
        Self::with_rack_width(machines, cfg, rng, nodes_per_rack)
    }

    /// Like [`DagActor::new`] with an explicit rack width, for composed
    /// scenarios whose fabric dictates the locality structure.
    pub fn with_rack_width(
        machines: u32,
        cfg: DagConfig,
        rng: &mut RngStream,
        nodes_per_rack: u32,
    ) -> Self {
        let spec = DagClusterSpec {
            machines: machines.max(1),
            cores_per_machine: cfg.cores_per_machine,
            memory_per_machine_gb: cfg.memory_per_machine_gb,
        };
        let shape = DagShape {
            width: cfg.width,
            work: cfg.task_work,
            cores: cfg.task_cores,
            memory_gb: cfg.task_memory_gb,
            edge_bytes: (cfg.edge_mb * MIB) as u64,
        };
        let ref_bw = cfg.reference_bandwidth_mbs * MIB;
        let jobs: Vec<JobState> = (0..cfg.jobs)
            .map(|j| {
                let class = cfg.classes[j % cfg.classes.len()];
                let dag = generate(class, &shape, rng);
                let n = dag.len();
                let reqs =
                    dag.tasks().iter().map(|t| ResourceVector::new(t.cores, t.memory_gb)).collect();
                let ranks = dag.upward_ranks(ref_bw);
                let deps_left = (0..n).map(|t| dag.in_edges(t).len()).collect();
                let pending_inputs = vec![0; n];
                let xfer_started = vec![None; dag.edges().len()];
                JobState {
                    dag,
                    class,
                    policy_idx: None,
                    submit_at: SimTime::ZERO,
                    reqs,
                    ranks,
                    deps_left,
                    placed_on: vec![None; n],
                    pending_inputs,
                    done: vec![false; n],
                    remaining: n,
                    xfer_started,
                    transfer_secs: 0.0,
                    stall_secs: 0.0,
                }
            })
            .collect();
        DagActor {
            cluster: spec.build("dag-pool"),
            spec,
            ref_bw,
            portfolio: DagPortfolio::standard(nodes_per_rack),
            jobs,
            ready: Vec::new(),
            rng: rng.derive("dag-place"),
            edge_hook: None,
            cfg,
            jobs_finished: 0,
            tasks_finished: 0,
            makespans: Vec::new(),
            transfer_secs: 0.0,
            stall_secs: 0.0,
        }
    }

    /// Installs the transfer hook that routes edge payloads over a network
    /// model instead of the reference-bandwidth constant.
    #[must_use]
    pub fn with_edge_hook(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, EdgeTransfer) + 'a,
    ) -> Self {
        self.edge_hook = Some(Box::new(hook));
        self
    }

    /// Workflows completed so far.
    pub fn jobs_finished(&self) -> u64 {
        self.jobs_finished
    }

    /// Tasks completed so far.
    pub fn tasks_finished(&self) -> u64 {
        self.tasks_finished
    }

    /// Mean makespan over completed workflows, seconds.
    pub fn mean_makespan_secs(&self) -> f64 {
        if self.makespans.is_empty() {
            return 0.0;
        }
        self.makespans.iter().sum::<f64>() / self.makespans.len() as f64
    }

    /// Total seconds edge payloads spent in flight.
    pub fn transfer_secs(&self) -> f64 {
        self.transfer_secs
    }

    /// Total transfer seconds beyond the reference-bandwidth ideal.
    pub fn stall_secs(&self) -> f64 {
        self.stall_secs
    }

    /// The portfolio's per-class decisions (empty unless
    /// [`DagPolicy::Portfolio`] is configured).
    pub fn portfolio_decisions(&self) -> &[(DagClass, usize)] {
        self.portfolio.decisions()
    }

    fn on_start(&mut self, ctx: &mut Context<'_, M>) {
        let interval = SimDuration::from_secs_f64(self.cfg.submit_interval_secs.max(0.0));
        let mut at = ctx.now();
        for j in 0..self.jobs.len() {
            ctx.send_at(ctx.self_id(), at, M::wrap(DagMsg::Submit(j as u32)));
            at += interval;
        }
    }

    fn resolve_policy(&mut self, j: usize) -> usize {
        match self.cfg.policy {
            DagPolicy::Heft => 0,
            DagPolicy::Greedy => 1,
            DagPolicy::Locality => 2,
            DagPolicy::Portfolio => {
                let job = &self.jobs[j];
                self.portfolio.choose_index(job.class, &job.dag, &self.spec, self.ref_bw)
            }
        }
    }

    fn on_submit(&mut self, ctx: &mut Context<'_, M>, j: usize) {
        let now = ctx.now();
        let policy_idx = self.resolve_policy(j);
        let job = &mut self.jobs[j];
        job.submit_at = now;
        job.policy_idx = Some(policy_idx);
        ctx.emit_fields(
            DAG_COMPONENT,
            "job_submit",
            &[
                ("job", Field::U64(j as u64)),
                ("class", Field::Str(job.class.name())),
                ("tasks", Field::U64(job.dag.len() as u64)),
                ("policy", Field::Str(self.portfolio.candidates()[policy_idx].name())),
            ],
        );
        let sources: Vec<u32> =
            (0..self.jobs[j].dag.len() as u32).filter(|&t| self.jobs[j].deps_left[t as usize] == 0).collect();
        for t in sources {
            self.make_ready(ctx, j as u32, t, now);
        }
    }

    fn make_ready(&mut self, ctx: &mut Context<'_, M>, job: u32, task: u32, now: SimTime) {
        ctx.emit_fields(
            DAG_COMPONENT,
            "task_ready",
            &[("job", Field::U64(u64::from(job))), ("task", Field::U64(u64::from(task)))],
        );
        self.ready.push(ReadyTask { job, task, ready_at: now });
    }

    /// Orders the ready queue (FCFS across workflows, each workflow's own
    /// policy within it) and places whatever fits right now.
    fn dispatch(&mut self, ctx: &mut Context<'_, M>) {
        let Self { jobs, ready, portfolio, cluster, rng, .. } = self;
        ready.sort_by(|a, b| {
            a.job.cmp(&b.job).then_with(|| {
                let policy = jobs[a.job as usize]
                    .policy_idx
                    .map(|i| portfolio.candidates()[i].as_ref())
                    .expect("ready task in an unsubmitted job");
                policy.compare(&ready_view(jobs, a), &ready_view(jobs, b))
            })
        });
        let mut placements: Vec<(u32, u32, MachineId)> = Vec::new();
        let mut i = 0;
        while i < ready.len() {
            let r = ready[i];
            let policy_idx =
                jobs[r.job as usize].policy_idx.expect("ready task in an unsubmitted job");
            let policy = portfolio.candidates()[policy_idx].as_ref();
            let v = ready_view(jobs, &r);
            let req = *v.req;
            let placed = policy
                .select_machine(cluster, &v, rng)
                .filter(|&mid| cluster.machine_mut(mid).try_allocate(&req));
            if let Some(mid) = placed {
                jobs[r.job as usize].placed_on[r.task as usize] = Some(mid);
                placements.push((r.job, r.task, mid));
                ready.remove(i);
            } else {
                i += 1;
            }
        }
        for (job, task, mid) in placements {
            self.begin_task(ctx, job, task, mid);
        }
    }

    /// A freshly placed task pulls its inputs, then computes.
    fn begin_task(&mut self, ctx: &mut Context<'_, M>, j: u32, t: u32, mid: MachineId) {
        let now = ctx.now();
        ctx.emit_fields(
            DAG_COMPONENT,
            "task_placed",
            &[
                ("job", Field::U64(u64::from(j))),
                ("task", Field::U64(u64::from(t))),
                ("machine", Field::U64(u64::from(mid.0))),
            ],
        );
        let job = &mut self.jobs[j as usize];
        let in_edges: Vec<usize> = job.dag.in_edges(t as usize).to_vec();
        let mut transfers: Vec<EdgeTransfer> = Vec::new();
        for ei in in_edges {
            let e = job.dag.edges()[ei];
            let src = job.placed_on[e.from].expect("parent of a ready task is placed").0;
            if src == mid.0 || e.bytes == 0 {
                continue; // data already local
            }
            job.pending_inputs[t as usize] += 1;
            job.xfer_started[ei] = Some(now);
            transfers.push(EdgeTransfer {
                job: j,
                edge: ei as u32,
                src,
                dst: mid.0,
                bytes: e.bytes,
            });
        }
        if job.pending_inputs[t as usize] == 0 {
            self.start_compute(ctx, j, t, mid);
            return;
        }
        let ideal = |bytes: u64| SimDuration::from_secs_f64(bytes as f64 / self.ref_bw);
        for x in transfers {
            match self.edge_hook.as_mut() {
                Some(hook) => hook(ctx, x),
                None => {
                    ctx.send_self(ideal(x.bytes), M::wrap(DagMsg::EdgeDone { job: j, edge: x.edge }));
                }
            }
        }
    }

    fn on_edge_done(&mut self, ctx: &mut Context<'_, M>, j: u32, e: u32) {
        let now = ctx.now();
        let job = &mut self.jobs[j as usize];
        let Some(started) = job.xfer_started[e as usize].take() else {
            return; // stale or duplicate delivery
        };
        let edge = job.dag.edges()[e as usize];
        let secs = now.saturating_since(started).as_secs_f64();
        let ideal = edge.bytes as f64 / self.ref_bw;
        let stall = (secs - ideal).max(0.0);
        job.transfer_secs += secs;
        job.stall_secs += stall;
        self.transfer_secs += secs;
        self.stall_secs += stall;
        ctx.emit_fields(
            DAG_COMPONENT,
            "edge_xfer",
            &[
                ("job", Field::U64(u64::from(j))),
                ("edge", Field::U64(u64::from(e))),
                ("bytes", Field::U64(edge.bytes)),
                ("secs", Field::F64(secs)),
                ("stall_secs", Field::F64(stall)),
            ],
        );
        let t = edge.to;
        job.pending_inputs[t] -= 1;
        if job.pending_inputs[t] == 0 {
            let mid = job.placed_on[t].expect("transfer target is placed");
            self.start_compute(ctx, j, t as u32, mid);
        }
    }

    fn start_compute(&mut self, ctx: &mut Context<'_, M>, j: u32, t: u32, mid: MachineId) {
        let job = &self.jobs[j as usize];
        let task = job.dag.tasks()[t as usize];
        let req = &job.reqs[t as usize];
        let speed = self.cluster.machine(mid).speedup_for(req).max(1e-9);
        let runtime =
            SimDuration::from_secs_f64(task.work / (req.cpu_cores.max(1e-9) * speed));
        ctx.emit_fields(
            DAG_COMPONENT,
            "task_start",
            &[
                ("job", Field::U64(u64::from(j))),
                ("task", Field::U64(u64::from(t))),
                ("machine", Field::U64(u64::from(mid.0))),
            ],
        );
        ctx.send_self(runtime, M::wrap(DagMsg::TaskDone { job: j, task: t }));
    }

    fn on_task_done(&mut self, ctx: &mut Context<'_, M>, j: u32, t: u32) {
        let now = ctx.now();
        let job = &mut self.jobs[j as usize];
        if job.done[t as usize] {
            return;
        }
        job.done[t as usize] = true;
        job.remaining -= 1;
        let mid = job.placed_on[t as usize].expect("finished task was placed");
        self.cluster.machine_mut(mid).release(&job.reqs[t as usize]);
        self.tasks_finished += 1;
        ctx.emit_fields(
            DAG_COMPONENT,
            "task_finish",
            &[("job", Field::U64(u64::from(j))), ("task", Field::U64(u64::from(t)))],
        );
        let out_edges: Vec<usize> = job.dag.out_edges(t as usize).to_vec();
        let mut newly_ready: Vec<u32> = Vec::new();
        for ei in out_edges {
            let c = job.dag.edges()[ei].to;
            job.deps_left[c] -= 1;
            if job.deps_left[c] == 0 {
                newly_ready.push(c as u32);
            }
        }
        let job_complete = job.remaining == 0;
        if job_complete {
            let makespan = now.saturating_since(job.submit_at).as_secs_f64();
            let policy_idx = job.policy_idx.expect("completed job was submitted");
            self.jobs_finished += 1;
            self.makespans.push(makespan);
            let job = &self.jobs[j as usize];
            ctx.emit_fields(
                DAG_COMPONENT,
                "job_finish",
                &[
                    ("job", Field::U64(u64::from(j))),
                    ("class", Field::Str(job.class.name())),
                    ("policy", Field::Str(self.portfolio.candidates()[policy_idx].name())),
                    ("tasks", Field::U64(job.dag.len() as u64)),
                    ("makespan_secs", Field::F64(makespan)),
                    ("transfer_secs", Field::F64(job.transfer_secs)),
                    ("stall_secs", Field::F64(job.stall_secs)),
                ],
            );
        }
        for c in newly_ready {
            self.make_ready(ctx, j, c, now);
        }
    }
}

/// Policy view of one ready queue entry.
fn ready_view<'j>(jobs: &'j [JobState], r: &ReadyTask) -> QueuedTaskView<'j> {
    let job = &jobs[r.job as usize];
    let t = r.task as usize;
    QueuedTaskView {
        id: TaskId((u64::from(r.job) << 32) | u64::from(r.task)),
        submit: job.submit_at,
        ready_at: r.ready_at,
        demand_left: job.dag.tasks()[t].work,
        req: &job.reqs[t],
        deadline: None,
        rank: job.ranks[t],
        data_home: data_home(&job.dag, &job.placed_on, t),
    }
}

impl<M: MessageEnvelope<DagMsg>> Actor<M> for DagActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            DagMsg::Start => self.on_start(ctx),
            DagMsg::Submit(j) => self.on_submit(ctx, j as usize),
            DagMsg::TaskDone { job, task } => self.on_task_done(ctx, job, task),
            DagMsg::EdgeDone { job, edge } => self.on_edge_done(ctx, job, edge),
        }
        // A placement pass after every event, like the RMS scheduler.
        self.dispatch(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::engine::Simulation;

    fn cfg(policy: DagPolicy) -> DagConfig {
        DagConfig {
            jobs: 4,
            width: 4,
            task_work: 60.0,
            submit_interval_secs: 30.0,
            policy,
            ..Default::default()
        }
    }

    fn run(policy: DagPolicy, seed: u64) -> (u64, u64, f64, String) {
        let mut rng = RngStream::new(seed, "dag");
        let mut actor: DagActor<'_, DagMsg> = DagActor::new(16, cfg(policy), &mut rng);
        let mut sim: Simulation<'_, DagMsg> = Simulation::new(seed);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, DagMsg::Start);
        sim.run();
        let trace = sim.trace().to_json_string();
        drop(sim);
        let out = (actor.jobs_finished(), actor.tasks_finished(), actor.mean_makespan_secs(), trace);
        drop(actor);
        out
    }

    #[test]
    fn all_jobs_complete_under_every_policy() {
        for policy in DagPolicy::ALL {
            let (jobs, tasks, mean, trace) = run(policy, 7);
            assert_eq!(jobs, 4, "{}", policy.name());
            assert!(tasks > 4);
            assert!(mean > 0.0);
            assert!(trace.contains("job_finish"));
            assert!(trace.contains("edge_xfer"));
        }
    }

    #[test]
    fn standalone_runs_are_deterministic() {
        let a = run(DagPolicy::Portfolio, 42);
        let b = run(DagPolicy::Portfolio, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let mut rng = RngStream::new(5, "dag");
        let config = cfg(DagPolicy::Heft);
        let actor: DagActor<'_, DagMsg> = DagActor::new(16, config.clone(), &mut rng);
        // Compute-only bound: co-located tasks skip their edge transfers.
        let cps: Vec<f64> =
            actor.jobs.iter().map(|j| j.dag.critical_path_secs(f64::INFINITY)).collect();
        drop(actor);
        let mut rng = RngStream::new(5, "dag");
        let mut actor: DagActor<'_, DagMsg> = DagActor::new(16, config, &mut rng);
        let mut sim: Simulation<'_, DagMsg> = Simulation::new(5);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, DagMsg::Start);
        sim.run();
        drop(sim);
        for (makespan, cp) in actor.makespans.iter().zip(&cps) {
            // SimTime is nanosecond-resolution; allow for truncation.
            assert!(makespan + 1e-6 >= *cp, "makespan {makespan} < critical path {cp}");
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(DagConfig::default().validate().is_ok());
        for bad in [
            DagConfig { jobs: 0, ..Default::default() },
            DagConfig { classes: vec![], ..Default::default() },
            DagConfig { width: 0, ..Default::default() },
            DagConfig { task_work: 0.0, ..Default::default() },
            DagConfig { task_cores: 64.0, ..Default::default() },
            DagConfig { task_memory_gb: 1e6, ..Default::default() },
            DagConfig { edge_mb: -1.0, ..Default::default() },
            DagConfig { submit_interval_secs: f64::NAN, ..Default::default() },
            DagConfig { locality_domains: 0, ..Default::default() },
            DagConfig { reference_bandwidth_mbs: 0.0, ..Default::default() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }
}
