//! Deterministic workflow generators for the canonical science shapes.
//!
//! Four classes, mirroring the workloads the Grid Workloads Archive and the
//! workflow-simulation literature lean on: plain chains, fork-join bags,
//! Montage-like layered mosaics (wide projection layer, pairwise overlap
//! diffs, a background fit, per-tile correction, one co-add), and LIGO-like
//! inspiral pipelines (parallel match-filter chains between a split and a
//! coincidence merge). All randomness comes from the caller's
//! [`RngStream`], so a `(seed, class, parameters)` triple always produces
//! the identical [`DagJob`].

use crate::job::{DagEdge, DagJob, DagTask};
use mcs_simcore::rng::RngStream;

/// The workflow classes the generators cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DagClass {
    /// A linear chain of dependent tasks.
    Chain,
    /// One source fanning out to a bag, joined by one sink.
    ForkJoin,
    /// Montage-like layered mosaic pipeline.
    Montage,
    /// LIGO-like parallel inspiral chains between split and merge.
    Ligo,
}

impl DagClass {
    /// All classes, for sweeps and mixed-class workloads.
    pub const ALL: [DagClass; 4] =
        [DagClass::Chain, DagClass::ForkJoin, DagClass::Montage, DagClass::Ligo];

    /// A short stable name for reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            DagClass::Chain => "chain",
            DagClass::ForkJoin => "fork-join",
            DagClass::Montage => "montage",
            DagClass::Ligo => "ligo",
        }
    }
}

/// Shape parameters shared by every generator: per-task work and footprint
/// are jittered uniformly in `[0.5, 1.5]` × the base value, edge payloads
/// in `[0.5, 1.5]` × `edge_bytes`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagShape {
    /// Parallel width (chain length for [`DagClass::Chain`]).
    pub width: usize,
    /// Base per-task demand, core-seconds.
    pub work: f64,
    /// Cores per task.
    pub cores: f64,
    /// Memory per task, GiB.
    pub memory_gb: f64,
    /// Base bytes per edge.
    pub edge_bytes: u64,
}

impl DagShape {
    fn task(&self, rng: &mut RngStream) -> DagTask {
        DagTask {
            work: self.work * rng.uniform_f64(0.5, 1.5),
            cores: self.cores,
            memory_gb: self.memory_gb,
        }
    }

    fn bytes(&self, rng: &mut RngStream) -> u64 {
        (self.edge_bytes as f64 * rng.uniform_f64(0.5, 1.5)) as u64
    }
}

/// Generates one workflow of `class`. Panics never: every shape the
/// generators emit passes [`DagJob::new`] validation by construction.
pub fn generate(class: DagClass, shape: &DagShape, rng: &mut RngStream) -> DagJob {
    let dag = match class {
        DagClass::Chain => chain(shape, rng),
        DagClass::ForkJoin => fork_join(shape, rng),
        DagClass::Montage => montage_like(shape, rng),
        DagClass::Ligo => ligo_like(shape, rng),
    };
    dag.expect("generator emitted an invalid DAG")
}

fn chain(shape: &DagShape, rng: &mut RngStream) -> Result<DagJob, crate::job::DagError> {
    let n = shape.width.max(1);
    let tasks: Vec<DagTask> = (0..n).map(|_| shape.task(rng)).collect();
    let edges: Vec<DagEdge> = (1..n)
        .map(|i| DagEdge { from: i - 1, to: i, bytes: shape.bytes(rng) })
        .collect();
    DagJob::new(tasks, edges)
}

fn fork_join(shape: &DagShape, rng: &mut RngStream) -> Result<DagJob, crate::job::DagError> {
    let w = shape.width.max(1);
    // Task 0 = source, 1..=w = bag, w+1 = sink.
    let tasks: Vec<DagTask> = (0..w + 2).map(|_| shape.task(rng)).collect();
    let mut edges = Vec::with_capacity(2 * w);
    for i in 1..=w {
        edges.push(DagEdge { from: 0, to: i, bytes: shape.bytes(rng) });
        edges.push(DagEdge { from: i, to: w + 1, bytes: shape.bytes(rng) });
    }
    DagJob::new(tasks, edges)
}

/// Montage-like: `w` projection tasks, `w-1` pairwise overlap diffs, one
/// background model fed by every diff, `w` per-tile corrections, one
/// final co-add.
fn montage_like(shape: &DagShape, rng: &mut RngStream) -> Result<DagJob, crate::job::DagError> {
    let w = shape.width.max(2);
    let mut tasks: Vec<DagTask> = Vec::new();
    let mut edges: Vec<DagEdge> = Vec::new();
    let project: Vec<usize> = (0..w).map(|_| push(&mut tasks, shape.task(rng))).collect();
    let diffs: Vec<usize> = (0..w - 1)
        .map(|i| {
            let d = push(&mut tasks, shape.task(rng));
            edges.push(DagEdge { from: project[i], to: d, bytes: shape.bytes(rng) });
            edges.push(DagEdge { from: project[i + 1], to: d, bytes: shape.bytes(rng) });
            d
        })
        .collect();
    let model = push(&mut tasks, shape.task(rng));
    for &d in &diffs {
        edges.push(DagEdge { from: d, to: model, bytes: shape.bytes(rng) });
    }
    let correct: Vec<usize> = (0..w)
        .map(|i| {
            let c = push(&mut tasks, shape.task(rng));
            edges.push(DagEdge { from: model, to: c, bytes: shape.bytes(rng) });
            edges.push(DagEdge { from: project[i], to: c, bytes: shape.bytes(rng) });
            c
        })
        .collect();
    let coadd = push(&mut tasks, shape.task(rng));
    for &c in &correct {
        edges.push(DagEdge { from: c, to: coadd, bytes: shape.bytes(rng) });
    }
    DagJob::new(tasks, edges)
}

/// LIGO-like: a split task fans out to `w` three-stage match-filter chains
/// that a coincidence task merges.
fn ligo_like(shape: &DagShape, rng: &mut RngStream) -> Result<DagJob, crate::job::DagError> {
    let w = shape.width.max(1);
    let mut tasks: Vec<DagTask> = Vec::new();
    let mut edges: Vec<DagEdge> = Vec::new();
    let split = push(&mut tasks, shape.task(rng));
    let mut chain_tails = Vec::with_capacity(w);
    for _ in 0..w {
        let mut prev = split;
        for _ in 0..3 {
            let t = push(&mut tasks, shape.task(rng));
            edges.push(DagEdge { from: prev, to: t, bytes: shape.bytes(rng) });
            prev = t;
        }
        chain_tails.push(prev);
    }
    let merge = push(&mut tasks, shape.task(rng));
    for &t in &chain_tails {
        edges.push(DagEdge { from: t, to: merge, bytes: shape.bytes(rng) });
    }
    DagJob::new(tasks, edges)
}

fn push(tasks: &mut Vec<DagTask>, t: DagTask) -> usize {
    tasks.push(t);
    tasks.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> DagShape {
        DagShape { width: 5, work: 100.0, cores: 2.0, memory_gb: 4.0, edge_bytes: 1 << 20 }
    }

    #[test]
    fn all_classes_generate_valid_dags() {
        for class in DagClass::ALL {
            let mut rng = RngStream::new(7, "dag-gen");
            let dag = generate(class, &shape(), &mut rng);
            assert!(!dag.is_empty(), "{} is empty", class.name());
            // Validation already ran in DagJob::new; spot-check shape sizes.
            match class {
                DagClass::Chain => assert_eq!(dag.len(), 5),
                DagClass::ForkJoin => assert_eq!(dag.len(), 7),
                DagClass::Montage => assert_eq!(dag.len(), 5 + 4 + 1 + 5 + 1),
                DagClass::Ligo => assert_eq!(dag.len(), 1 + 15 + 1),
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        for class in DagClass::ALL {
            let mut a = RngStream::new(42, "dag-gen");
            let mut b = RngStream::new(42, "dag-gen");
            assert_eq!(generate(class, &shape(), &mut a), generate(class, &shape(), &mut b));
            let mut c = RngStream::new(43, "dag-gen");
            assert_ne!(
                generate(class, &shape(), &mut c).tasks()[0].work,
                generate(class, &shape(), &mut a).tasks()[0].work,
            );
        }
    }

    #[test]
    fn class_names_are_stable() {
        let names: Vec<&str> = DagClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["chain", "fork-join", "montage", "ligo"]);
    }
}
