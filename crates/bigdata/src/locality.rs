//! Locality-aware map-task scheduling simulation.
//!
//! The Figure 1 discussion stresses that layers the developer does not
//! control (storage, execution engine) determine performance. This module
//! quantifies one such effect: scheduling map tasks near their input blocks
//! (node-local / rack-local / remote) versus locality-blind placement.

use crate::storage::{BlockStore, NodeId, StoredFile};
use mcs_simcore::rng::RngStream;

/// Where a map task read its input from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalityClass {
    /// Input block on the executing node.
    NodeLocal,
    /// Input block on the same rack.
    RackLocal,
    /// Input block on a remote rack.
    Remote,
}

/// The outcome of scheduling one map phase.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPhaseOutcome {
    /// Makespan of the map phase, seconds.
    pub makespan_secs: f64,
    /// Tasks per locality class: (node-local, rack-local, remote).
    pub locality_counts: (usize, usize, usize),
    /// Bytes moved across the network.
    pub network_bytes: u64,
}

/// Map-phase scheduling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapPhaseConfig {
    /// Map slots per node.
    pub slots_per_node: usize,
    /// Seconds to process one block when node-local.
    pub local_secs_per_block: f64,
    /// Multiplier when rack-local (extra intra-rack read).
    pub rack_penalty: f64,
    /// Multiplier when remote (cross-rack read).
    pub remote_penalty: f64,
    /// Prefer placing tasks on nodes holding (or rack-sharing) their block.
    pub locality_aware: bool,
}

impl Default for MapPhaseConfig {
    fn default() -> Self {
        MapPhaseConfig {
            slots_per_node: 2,
            local_secs_per_block: 10.0,
            rack_penalty: 1.3,
            remote_penalty: 2.0,
            locality_aware: true,
        }
    }
}

/// Simulates the map phase of a job over `file`, one task per block, using
/// greedy list scheduling onto node slots.
pub fn schedule_map_phase(
    store: &BlockStore,
    file: &StoredFile,
    config: MapPhaseConfig,
    rng: &mut RngStream,
) -> MapPhaseOutcome {
    let node_count = store.node_count() as usize;
    // Per-slot available times.
    let mut slot_free = vec![vec![0.0f64; config.slots_per_node]; node_count];
    let mut counts = (0usize, 0usize, 0usize);
    let mut network_bytes = 0u64;
    let mut makespan = 0.0f64;

    for &block in &file.blocks {
        // Earliest-available slot per node.
        let earliest = |node: usize, slot_free: &Vec<Vec<f64>>| {
            slot_free[node]
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
        };
        let chosen_node = if config.locality_aware {
            // Among replica holders pick the one whose slot frees first;
            // fall back to rack-local, then the globally earliest node.
            let holders = store.locations(block);
            let best_holder = holders
                .iter()
                .map(|n| n.0 as usize)
                .min_by(|&a, &b| {
                    earliest(a, &slot_free)
                        .partial_cmp(&earliest(b, &slot_free))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let global_best = (0..node_count)
                .min_by(|&a, &b| {
                    earliest(a, &slot_free)
                        .partial_cmp(&earliest(b, &slot_free))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0);
            match best_holder {
                // Take the local node unless it is badly backlogged.
                Some(h)
                    if earliest(h, &slot_free)
                        <= earliest(global_best, &slot_free)
                            + config.local_secs_per_block =>
                {
                    h
                }
                _ => global_best,
            }
        } else {
            // Locality-blind: random node (the Hadoop-without-delay-scheduling
            // strawman).
            rng.uniform_usize(node_count)
        };

        let node = NodeId(chosen_node as u32);
        let class = if store.is_local(block, node) {
            counts.0 += 1;
            LocalityClass::NodeLocal
        } else if store.is_rack_local(block, node) {
            counts.1 += 1;
            LocalityClass::RackLocal
        } else {
            counts.2 += 1;
            LocalityClass::Remote
        };
        let runtime = config.local_secs_per_block
            * match class {
                LocalityClass::NodeLocal => 1.0,
                LocalityClass::RackLocal => config.rack_penalty,
                LocalityClass::Remote => config.remote_penalty,
            };
        if class != LocalityClass::NodeLocal {
            network_bytes += file.block_size;
        }
        // Assign to the earliest slot of the chosen node.
        let slot = (0..config.slots_per_node)
            .min_by(|&a, &b| {
                slot_free[chosen_node][a]
                    .partial_cmp(&slot_free[chosen_node][b])
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("at least one slot");
        let start = slot_free[chosen_node][slot];
        let end = start + runtime;
        slot_free[chosen_node][slot] = end;
        makespan = makespan.max(end);
    }

    MapPhaseOutcome { makespan_secs: makespan, locality_counts: counts, network_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (BlockStore, StoredFile) {
        let mut store = BlockStore::new(16, 4, 3, 11);
        let file = store.put("input", 64 * 128, 128).clone();
        (store, file)
    }

    #[test]
    fn locality_aware_is_mostly_local() {
        let (store, file) = setup();
        let mut rng = RngStream::new(1, "map");
        let out = schedule_map_phase(&store, &file, MapPhaseConfig::default(), &mut rng);
        let total = out.locality_counts.0 + out.locality_counts.1 + out.locality_counts.2;
        assert_eq!(total, 64);
        assert!(
            out.locality_counts.0 as f64 / total as f64 > 0.8,
            "node-local fraction too low: {:?}",
            out.locality_counts
        );
    }

    #[test]
    fn locality_blind_moves_more_data_and_is_slower() {
        let (store, file) = setup();
        let aware_cfg = MapPhaseConfig::default();
        let blind_cfg = MapPhaseConfig { locality_aware: false, ..aware_cfg };
        let mut rng_a = RngStream::new(2, "aware");
        let mut rng_b = RngStream::new(2, "blind");
        let aware = schedule_map_phase(&store, &file, aware_cfg, &mut rng_a);
        let blind = schedule_map_phase(&store, &file, blind_cfg, &mut rng_b);
        assert!(blind.network_bytes > aware.network_bytes * 2);
        assert!(
            blind.makespan_secs > aware.makespan_secs,
            "blind {} vs aware {}",
            blind.makespan_secs,
            aware.makespan_secs
        );
    }

    #[test]
    fn makespan_respects_slot_capacity() {
        let (store, file) = setup();
        // 16 nodes x 2 slots = 32 parallel tasks; 64 blocks => ≥ 2 waves.
        let mut rng = RngStream::new(3, "map");
        let out = schedule_map_phase(&store, &file, MapPhaseConfig::default(), &mut rng);
        assert!(out.makespan_secs >= 20.0, "makespan {}", out.makespan_secs);
    }

    #[test]
    fn deterministic() {
        let (store, file) = setup();
        let mut r1 = RngStream::new(4, "m");
        let mut r2 = RngStream::new(4, "m");
        let a = schedule_map_phase(&store, &file, MapPhaseConfig::default(), &mut r1);
        let b = schedule_map_phase(&store, &file, MapPhaseConfig::default(), &mut r2);
        assert_eq!(a, b);
    }
}
