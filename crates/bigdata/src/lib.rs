//! # mcs-bigdata — the Figure 1 big-data ecosystem stack
//!
//! The four conceptual layers of the paper's Figure 1, as working code:
//!
//! - **Storage engine** ([`storage`]): rack-aware replicated block store
//!   with locality queries and re-replication.
//! - **Execution engine** ([`mapreduce`]): a real, multi-threaded,
//!   deterministic MapReduce with combiner support and per-phase metrics;
//!   plus locality-aware map scheduling simulation ([`locality`]).
//! - **Programming models**: MapReduce itself and the Pregel sub-ecosystem
//!   ([`pregel`]) backed by `mcs-graph`'s BSP engine.
//! - **High-level language** ([`dataflow`]): a Pig/Hive-style plan that
//!   compiles to map-only and map+shuffle+reduce stages.
//!
//! The crate exists to make the paper's point about Figure 1 executable:
//! an application touches one layer, but its performance is produced by
//! the whole stack.
//!
//! ## Example
//! ```
//! use mcs_bigdata::mapreduce::{word_count, MapReduceEngine};
//!
//! let docs = vec!["to be or not to be".to_owned()];
//! let counts = word_count(&MapReduceEngine::default(), &docs);
//! assert_eq!(counts.iter().find(|(w, _)| w == "be").unwrap().1, 2);
//! ```

pub mod actor;
pub mod dataflow;
pub mod locality;
pub mod mapreduce;
pub mod pregel;
pub mod storage;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::actor::{
        run_bigdata_standalone, BdPhase, BdTransfer, BigdataConfig, BigdataMsg, DataflowActor,
    };
    pub use crate::dataflow::{execute, Op, Plan, Record, StageReport};
    pub use crate::locality::{schedule_map_phase, LocalityClass, MapPhaseConfig, MapPhaseOutcome};
    pub use crate::mapreduce::{word_count, JobMetrics, MapReduceEngine};
    pub use crate::pregel::{
        degree_histogram_mapreduce, pagerank_mapreduce, pagerank_pregel, scan_time_secs,
        StackTiming,
    };
    pub use crate::storage::{BlockId, BlockStore, NodeId, StoredFile};
}
