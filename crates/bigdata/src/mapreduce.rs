//! The MapReduce execution engine of the Figure 1 stack.
//!
//! A real, multi-threaded, deterministic MapReduce over in-memory records:
//! the map phase fans input chunks across std scoped threads, the
//! shuffle groups by key into ordered runs, and the reduce phase processes
//! key ranges in parallel. Output order is always sorted by key, so results
//! are bit-identical regardless of thread count.

use std::collections::BTreeMap;
use std::time::Instant;

/// Phase timing of one job, the per-layer breakdown reported by the Fig. 1
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobMetrics {
    /// Map-phase wall time, seconds.
    pub map_secs: f64,
    /// Shuffle wall time, seconds.
    pub shuffle_secs: f64,
    /// Reduce-phase wall time, seconds.
    pub reduce_secs: f64,
    /// Intermediate key-value pairs produced by the map phase.
    pub shuffle_pairs: u64,
}

impl JobMetrics {
    /// Total wall time, seconds.
    pub fn total_secs(&self) -> f64 {
        self.map_secs + self.shuffle_secs + self.reduce_secs
    }
}

/// The engine: thread count and an optional combiner switch.
#[derive(Debug, Clone, Copy)]
pub struct MapReduceEngine {
    /// Worker threads for map and reduce phases.
    pub threads: usize,
    /// Run a per-thread combiner after map (reduces shuffle volume for
    /// associative reducers).
    pub combine: bool,
}

impl Default for MapReduceEngine {
    fn default() -> Self {
        MapReduceEngine { threads: 4, combine: false }
    }
}

impl MapReduceEngine {
    /// A serial engine.
    pub fn serial() -> Self {
        MapReduceEngine { threads: 1, combine: false }
    }

    /// Runs one MapReduce job.
    ///
    /// `map_fn` emits `(key, value)` pairs per input record; `reduce_fn`
    /// folds all values of one key (delivered in emission order) into the
    /// result. When [`MapReduceEngine::combine`] is set, `reduce_fn` is also
    /// applied per-thread before the shuffle *and its output re-enters
    /// reduce as a value*, so it must be associative with `V == R`
    /// semantics; use [`MapReduceEngine::run`] for non-associative folds.
    pub fn run<I, K, V, R>(
        &self,
        inputs: &[I],
        map_fn: impl Fn(&I, &mut Vec<(K, V)>) + Sync,
        reduce_fn: impl Fn(&K, &[V]) -> R + Sync,
    ) -> (Vec<(K, R)>, JobMetrics)
    where
        I: Sync,
        K: Ord + Clone + Send + Sync,
        V: Clone + Send + Sync,
        R: Send,
    {
        let threads = self.threads.max(1).min(inputs.len().max(1));
        let chunk = inputs.len().div_ceil(threads).max(1);
        let mut metrics = JobMetrics::default();

        // Map phase.
        let t0 = Instant::now();
        let mut per_thread: Vec<Vec<(K, V)>> = if inputs.is_empty() {
            Vec::new()
        } else {
            std::thread::scope(|scope| {
                let map_fn = &map_fn;
                let handles: Vec<_> = inputs
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for record in part {
                                map_fn(record, &mut out);
                            }
                            out
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("mapper panicked")).collect()
            })
        };
        metrics.map_secs = t0.elapsed().as_secs_f64();

        // Shuffle phase: group per key, preserving thread order.
        let t1 = Instant::now();
        let mut groups: BTreeMap<K, Vec<V>> = BTreeMap::new();
        for bucket in per_thread.drain(..) {
            for (k, v) in bucket {
                metrics.shuffle_pairs += 1;
                groups.entry(k).or_default().push(v);
            }
        }
        metrics.shuffle_secs = t1.elapsed().as_secs_f64();

        // Reduce phase: split the ordered key space across threads.
        let t2 = Instant::now();
        let entries: Vec<(K, Vec<V>)> = groups.into_iter().collect();
        let rchunk = entries.len().div_ceil(threads).max(1);
        let results: Vec<(K, R)> = if entries.is_empty() {
            Vec::new()
        } else {
            std::thread::scope(|scope| {
                let reduce_fn = &reduce_fn;
                let handles: Vec<_> = entries
                    .chunks(rchunk)
                    .map(|part| {
                        scope.spawn(move || {
                            part.iter()
                                .map(|(k, vs)| (k.clone(), reduce_fn(k, vs)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("reducer panicked"))
                    .collect()
            })
        };
        metrics.reduce_secs = t2.elapsed().as_secs_f64();
        (results, metrics)
    }

    /// A map-only stage: applies `f` to every record in parallel, preserving
    /// input order (no shuffle, no reduce). Returns the flattened outputs
    /// and the map-phase timing.
    pub fn map_only<I, O>(
        &self,
        inputs: &[I],
        f: impl Fn(&I, &mut Vec<O>) + Sync,
    ) -> (Vec<O>, JobMetrics)
    where
        I: Sync,
        O: Send,
    {
        let threads = self.threads.max(1).min(inputs.len().max(1));
        let chunk = inputs.len().div_ceil(threads).max(1);
        let t0 = Instant::now();
        let out: Vec<O> = if inputs.is_empty() {
            Vec::new()
        } else {
            std::thread::scope(|scope| {
                let f = &f;
                let handles: Vec<_> = inputs
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            let mut out = Vec::new();
                            for record in part {
                                f(record, &mut out);
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("mapper panicked"))
                    .collect()
            })
        };
        let metrics = JobMetrics { map_secs: t0.elapsed().as_secs_f64(), ..Default::default() };
        (out, metrics)
    }

    /// Like [`MapReduceEngine::run`] for associative monoid folds
    /// (`V == R`): applies a per-thread combiner before the shuffle when
    /// [`MapReduceEngine::combine`] is set.
    pub fn run_associative<I, K, V>(
        &self,
        inputs: &[I],
        map_fn: impl Fn(&I, &mut Vec<(K, V)>) + Sync,
        fold: impl Fn(&V, &V) -> V + Sync,
    ) -> (Vec<(K, V)>, JobMetrics)
    where
        I: Sync,
        K: Ord + Clone + Send + Sync,
        V: Clone + Send + Sync,
    {
        if !self.combine {
            return self.run(inputs, map_fn, |_k, vs: &[V]| {
                let mut acc = vs[0].clone();
                for v in &vs[1..] {
                    acc = fold(&acc, v);
                }
                acc
            });
        }
        // Combining variant: wrap map_fn so each thread pre-folds its pairs.
        let fold = &fold;
        let combined_map = |record: &I, out: &mut Vec<(K, V)>| {
            map_fn(record, out);
        };
        let threads = self.threads;
        let inner = MapReduceEngine { threads, combine: false };
        // First run a map+combine pass per chunk (modelled as a map over
        // chunks), then the grouping reduce.
        let chunk = inputs.len().div_ceil(threads.max(1)).max(1);
        let chunks: Vec<&[I]> = inputs.chunks(chunk).collect();
        inner.run(
            &chunks,
            |part: &&[I], out: &mut Vec<(K, V)>| {
                let mut local: BTreeMap<K, V> = BTreeMap::new();
                let mut buf = Vec::new();
                for record in &**part {
                    combined_map(record, &mut buf);
                    for (k, v) in buf.drain(..) {
                        match local.get_mut(&k) {
                            Some(acc) => *acc = fold(acc, &v),
                            None => {
                                local.insert(k, v);
                            }
                        }
                    }
                }
                out.extend(local);
            },
            move |_k, vs: &[V]| {
                let mut acc = vs[0].clone();
                for v in &vs[1..] {
                    acc = fold(&acc, v);
                }
                acc
            },
        )
    }
}

/// The canonical example: word count.
pub fn word_count(engine: &MapReduceEngine, documents: &[String]) -> Vec<(String, u64)> {
    let (result, _) = engine.run_associative(
        documents,
        |doc: &String, out: &mut Vec<(String, u64)>| {
            for w in doc.split_whitespace() {
                out.push((w.to_lowercase(), 1));
            }
        },
        |a, b| a + b,
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_count_hand_example() {
        let docs = vec!["the cat and the hat".to_owned(), "The Cat".to_owned()];
        let counts = word_count(&MapReduceEngine::serial(), &docs);
        let get = |w: &str| counts.iter().find(|(k, _)| k == w).map(|(_, c)| *c);
        assert_eq!(get("the"), Some(3));
        assert_eq!(get("cat"), Some(2));
        assert_eq!(get("hat"), Some(1));
        assert_eq!(get("dog"), None);
        // Output sorted by key.
        let keys: Vec<&String> = counts.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn parallel_matches_serial() {
        let docs: Vec<String> =
            (0..200).map(|i| format!("w{} w{} shared token", i % 7, i % 13)).collect();
        let serial = word_count(&MapReduceEngine::serial(), &docs);
        for threads in [2, 4, 8] {
            let par = word_count(&MapReduceEngine { threads, combine: false }, &docs);
            assert_eq!(par, serial, "threads = {threads}");
            let comb = word_count(&MapReduceEngine { threads, combine: true }, &docs);
            assert_eq!(comb, serial, "combiner, threads = {threads}");
        }
    }

    #[test]
    fn combiner_reduces_shuffle_volume() {
        let docs: Vec<String> = (0..500).map(|_| "a a a b".to_owned()).collect();
        let plain = MapReduceEngine { threads: 4, combine: false };
        let comb = MapReduceEngine { threads: 4, combine: true };
        let (_, m_plain) = plain.run_associative(
            &docs,
            |d: &String, out: &mut Vec<(String, u64)>| {
                for w in d.split_whitespace() {
                    out.push((w.to_owned(), 1));
                }
            },
            |a, b| a + b,
        );
        let (_, m_comb) = comb.run_associative(
            &docs,
            |d: &String, out: &mut Vec<(String, u64)>| {
                for w in d.split_whitespace() {
                    out.push((w.to_owned(), 1));
                }
            },
            |a, b| a + b,
        );
        assert!(
            m_comb.shuffle_pairs < m_plain.shuffle_pairs / 10,
            "combiner {} vs plain {}",
            m_comb.shuffle_pairs,
            m_plain.shuffle_pairs
        );
    }

    #[test]
    fn general_reduce_sees_all_values() {
        // Mean per key: a non-associative reduce.
        let inputs: Vec<(u32, f64)> =
            vec![(1, 2.0), (2, 10.0), (1, 4.0), (2, 20.0), (1, 6.0)];
        let engine = MapReduceEngine { threads: 3, combine: false };
        let (result, metrics) = engine.run(
            &inputs,
            |&(k, v): &(u32, f64), out: &mut Vec<(u32, f64)>| out.push((k, v)),
            |_k, vs: &[f64]| vs.iter().sum::<f64>() / vs.len() as f64,
        );
        assert_eq!(result, vec![(1, 4.0), (2, 15.0)]);
        assert_eq!(metrics.shuffle_pairs, 5);
    }

    #[test]
    fn empty_input_is_fine() {
        let engine = MapReduceEngine::default();
        let (result, metrics) = engine.run(
            &[] as &[u32],
            |_i: &u32, _o: &mut Vec<(u32, u32)>| {},
            |_k, vs: &[u32]| vs.len(),
        );
        assert!(result.is_empty());
        assert_eq!(metrics.shuffle_pairs, 0);
    }

    #[test]
    fn metrics_phases_populated() {
        let docs: Vec<String> = (0..100).map(|i| format!("token{}", i % 5)).collect();
        let (_, m) = MapReduceEngine::default().run_associative(
            &docs,
            |d: &String, out: &mut Vec<(String, u64)>| out.push((d.clone(), 1)),
            |a, b| a + b,
        );
        assert!(m.total_secs() >= 0.0);
        assert_eq!(m.shuffle_pairs, 100);
    }
}
