//! The big-data stack as a discrete-event actor.
//!
//! [`DataflowActor`] drives MapReduce-style jobs over the replicated
//! [`BlockStore`](crate::storage::BlockStore): each job runs `stages` rounds
//! of map → shuffle → reduce, with the map phase scheduled through the real
//! locality-aware list scheduler of [`crate::locality`] and the shuffle
//! charged against a configurable network bandwidth. Node failures (fanned
//! in from a scenario-level injector) degrade compute capacity and trigger
//! re-replication, reproducing the Figure 1 claim that layers the developer
//! does not control — storage, network — set the performance envelope.
//!
//! The actor emits every transition onto the shared trace under component
//! `"bigdata"`, so stage makespans and re-replication traffic are computed
//! from traces alone. An optional *shuffle hook* lets a composed scenario
//! propagate shuffle windows to co-tenants (graph supersteps slow down,
//! gaming zones lose headroom) — the cross-tenant interference channel.

use crate::locality::{schedule_map_phase, MapPhaseConfig};
use crate::storage::{BlockStore, NodeId, StoredFile};
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope, Simulation};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use mcs_simcore::trace::{payload, TraceBus};

/// Bytes per mebibyte.
const MIB: u64 = 1024 * 1024;

/// Configuration of the big-data subsystem inside a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BigdataConfig {
    /// MapReduce jobs to submit.
    pub jobs: usize,
    /// Map→shuffle→reduce rounds per job.
    pub stages_per_job: usize,
    /// Seconds between successive job submissions.
    pub submit_interval_secs: f64,
    /// Input size per job, MiB.
    pub input_mb: u64,
    /// Block size, MiB.
    pub block_mb: u64,
    /// Replication factor of the block store.
    pub replication: usize,
    /// Nodes per rack in the storage topology.
    pub nodes_per_rack: u32,
    /// Map-phase scheduling parameters.
    pub map: MapPhaseConfig,
    /// Aggregate shuffle bandwidth, MiB/s — used only when no transfer hook
    /// is installed (legacy fixed-delay shuffles).
    pub shuffle_bandwidth_mbs: f64,
    /// Fraction of stage input that crosses the network in the shuffle.
    pub shuffle_ratio: f64,
    /// Parallel flows a phase's network traffic is split into when routed
    /// through the flow-level network model.
    pub shuffle_fanout: usize,
    /// Reduce duration as a fraction of the (healthy) map makespan.
    pub reduce_factor: f64,
    /// Delay before a failed node's blocks are re-replicated.
    pub recovery_delay_secs: f64,
}

impl Default for BigdataConfig {
    fn default() -> Self {
        BigdataConfig {
            jobs: 4,
            stages_per_job: 2,
            submit_interval_secs: 600.0,
            input_mb: 2_048,
            block_mb: 128,
            replication: 3,
            nodes_per_rack: 8,
            map: MapPhaseConfig::default(),
            shuffle_bandwidth_mbs: 400.0,
            shuffle_ratio: 0.4,
            shuffle_fanout: 4,
            reduce_factor: 0.5,
            recovery_delay_secs: 60.0,
        }
    }
}

/// The big-data actor's message vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BigdataMsg {
    /// Kick-off: submit all jobs on the configured cadence.
    Start,
    /// Job `.0` enters the system: store its input, start stage 0's map.
    Submit(usize),
    /// Job `.0`'s current map phase finished computing.
    MapDone(usize),
    /// One of job `.0`'s map-input network flows was delivered (flow-level
    /// network mode only).
    MapXferDone(usize),
    /// Job `.0`'s current shuffle finished (legacy fixed-delay mode).
    ShuffleDone(usize),
    /// One of job `.0`'s shuffle flows was delivered (flow-level network
    /// mode only).
    ShuffleXferDone(usize),
    /// Job `.0`'s current reduce finished.
    ReduceDone(usize),
    /// A storage/compute node died (from the scenario failure injector).
    NodeFail(u32),
    /// A node came back (compute only; its replicas are rebuilt elsewhere).
    NodeRepair(u32),
    /// Deferred re-replication pass after a failure.
    Recover,
}

/// Hook invoked when a shuffle starts (`active = true`) or ends
/// (`active = false`), used by composed scenarios to propagate network
/// pressure to co-tenant subsystems.
pub type ShuffleHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, usize, bool) + 'a>;

/// Which phase of a job a network transfer belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BdPhase {
    /// Remote map-input reads (locality misses).
    Map,
    /// The all-to-all shuffle.
    Shuffle,
}

/// One network transfer the dataflow engine wants carried by the flow-level
/// network model. The scenario's transfer hook turns it into an `mcs-net`
/// flow and later delivers [`BigdataMsg::MapXferDone`] /
/// [`BigdataMsg::ShuffleXferDone`] back to the actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdTransfer {
    /// The owning job.
    pub job: usize,
    /// Map-input read or shuffle traffic.
    pub phase: BdPhase,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Bytes to move.
    pub bytes: u64,
}

/// Hook that carries a [`BdTransfer`] onto the network model. When absent,
/// phases fall back to the legacy fixed-delay cost model, byte-identically.
pub type TransferHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, BdTransfer) + 'a>;

struct JobState {
    file: StoredFile,
    stage: usize,
    submitted: SimTime,
    stage_started: SimTime,
    healthy_map_secs: f64,
    /// Map-input flows still in the air (flow-level network mode).
    map_xfers_pending: usize,
    /// The map phase is still computing.
    map_compute_pending: bool,
    /// Shuffle flows still in the air (flow-level network mode).
    shuffle_xfers_pending: usize,
}

/// Runs the MapReduce/dataflow stack as one engine actor.
pub struct DataflowActor<'a, M> {
    config: BigdataConfig,
    store: BlockStore,
    rng: RngStream,
    machines: u32,
    dead_nodes: u64,
    jobs: Vec<Option<JobState>>,
    completed: usize,
    on_shuffle: Option<ShuffleHook<'a, M>>,
    on_transfer: Option<TransferHook<'a, M>>,
}

impl<'a, M: MessageEnvelope<BigdataMsg>> DataflowActor<'a, M> {
    /// Builds the actor over a fresh `machines`-node block store. The RNG
    /// stream must be dedicated to this actor (label `"bigdata"` by
    /// convention) so composition does not perturb other subsystems.
    pub fn new(config: BigdataConfig, machines: u32, mut rng: RngStream) -> Self {
        let store_seed = rng.next_u64();
        let store = BlockStore::new(
            machines.max(1),
            config.nodes_per_rack.max(1),
            config.replication.max(1),
            store_seed,
        );
        DataflowActor {
            config,
            store,
            rng,
            machines: machines.max(1),
            dead_nodes: 0,
            jobs: Vec::new(),
            completed: 0,
            on_shuffle: None,
            on_transfer: None,
        }
    }

    /// Installs the cross-tenant shuffle hook.
    pub fn with_shuffle_hook(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, usize, bool) + 'a,
    ) -> Self {
        self.on_shuffle = Some(Box::new(hook));
        self
    }

    /// Routes map-input and shuffle traffic through the flow-level network
    /// model instead of the fixed-delay cost model. Whoever installs the
    /// hook must deliver [`BigdataMsg::MapXferDone`] /
    /// [`BigdataMsg::ShuffleXferDone`] once per completed transfer.
    pub fn with_transfer_hook(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, BdTransfer) + 'a,
    ) -> Self {
        self.on_transfer = Some(Box::new(hook));
        self
    }

    /// Splits `bytes` of `phase` traffic for `job` into fan-out flows with
    /// rng-chosen distinct endpoints and hands them to the transfer hook.
    /// Returns how many flows were started (0 without a hook or bytes).
    fn launch_transfers(
        &mut self,
        ctx: &mut Context<'_, M>,
        job: usize,
        phase: BdPhase,
        bytes: u64,
    ) -> usize {
        if self.on_transfer.is_none() || bytes == 0 {
            return 0;
        }
        let fanout = self.config.shuffle_fanout.clamp(1, bytes as usize);
        let per_flow = bytes / fanout as u64;
        let mut sent = 0;
        for i in 0..fanout {
            // The last flow carries the rounding remainder.
            let flow_bytes =
                if i + 1 == fanout { bytes - per_flow * (fanout as u64 - 1) } else { per_flow };
            let src = self.rng.uniform_usize(self.machines as usize) as u32;
            let dst = if self.machines > 1 {
                (src + 1 + self.rng.uniform_usize(self.machines as usize - 1) as u32)
                    % self.machines
            } else {
                src
            };
            let xfer = BdTransfer { job, phase, src, dst, bytes: flow_bytes };
            if let Some(hook) = self.on_transfer.as_mut() {
                hook(ctx, xfer);
            }
            sent += 1;
        }
        sent
    }

    /// Jobs that ran all their stages to completion.
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Compute slowdown from dead nodes: losing a fraction `f` of the fleet
    /// stretches compute phases by `1 / (1 - f)`, capped at 4x.
    fn degradation(&self) -> f64 {
        let alive = (self.machines as f64 - self.dead_nodes as f64).max(1.0);
        (self.machines as f64 / alive).min(4.0)
    }

    fn start(&mut self, ctx: &mut Context<'_, M>) {
        for job in 0..self.config.jobs {
            let at = ctx.now()
                + SimDuration::from_secs_f64(self.config.submit_interval_secs * job as f64);
            ctx.send_at(ctx.self_id(), at, M::wrap(BigdataMsg::Submit(job)));
        }
    }

    fn submit(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let name = format!("job-{job}");
        let file = self
            .store
            .put(&name, self.config.input_mb * MIB, self.config.block_mb * MIB)
            .clone();
        ctx.emit(
            "bigdata",
            "job_submit",
            payload(vec![
                ("job", Json::UInt(job as u64)),
                ("input_mb", Json::UInt(self.config.input_mb)),
                ("blocks", Json::UInt(file.blocks.len() as u64)),
            ]),
        );
        if self.jobs.len() <= job {
            self.jobs.resize_with(job + 1, || None);
        }
        self.jobs[job] = Some(JobState {
            file,
            stage: 0,
            submitted: ctx.now(),
            stage_started: ctx.now(),
            healthy_map_secs: 0.0,
            map_xfers_pending: 0,
            map_compute_pending: false,
            shuffle_xfers_pending: 0,
        });
        self.start_map(ctx, job);
    }

    fn start_map(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let degradation = self.degradation();
        let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) else { return };
        state.stage_started = ctx.now();
        let outcome = schedule_map_phase(&self.store, &state.file, self.config.map, &mut self.rng);
        state.healthy_map_secs = outcome.makespan_secs;
        let slowed = outcome.makespan_secs * degradation;
        let (local, rack, remote) = outcome.locality_counts;
        ctx.emit(
            "bigdata",
            "map_start",
            payload(vec![
                ("job", Json::UInt(job as u64)),
                ("stage", Json::UInt(state.stage as u64)),
                ("makespan_secs", Json::Float(slowed)),
                ("node_local", Json::UInt(local as u64)),
                ("rack_local", Json::UInt(rack as u64)),
                ("remote", Json::UInt(remote as u64)),
                ("network_bytes", Json::UInt(outcome.network_bytes)),
                ("degradation", Json::Float(degradation)),
            ]),
        );
        ctx.send_self(SimDuration::from_secs_f64(slowed), M::wrap(BigdataMsg::MapDone(job)));
        // In flow-level network mode the locality misses are real transfers:
        // the map barrier opens only when compute *and* every flow finish.
        let net_bytes = outcome.network_bytes;
        let flows = self.launch_transfers(ctx, job, BdPhase::Map, net_bytes);
        if let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) {
            state.map_compute_pending = true;
            state.map_xfers_pending = flows;
        }
    }

    /// The map barrier: compute finished. In legacy mode this is the whole
    /// barrier; in flow-level network mode the in-flight map flows must land
    /// too.
    fn map_done(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) else { return };
        state.map_compute_pending = false;
        if state.map_xfers_pending == 0 {
            self.start_shuffle(ctx, job);
        }
    }

    /// One map-input flow delivered (flow-level network mode).
    fn map_xfer_done(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) else { return };
        state.map_xfers_pending = state.map_xfers_pending.saturating_sub(1);
        if state.map_xfers_pending == 0 && !state.map_compute_pending {
            self.start_shuffle(ctx, job);
        }
    }

    fn start_shuffle(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let Some(state) = self.jobs.get(job).and_then(Option::as_ref) else { return };
        let stage = state.stage;
        let shuffle_bytes =
            (self.config.input_mb as f64 * MIB as f64 * self.config.shuffle_ratio) as u64;
        let secs = shuffle_bytes as f64 / (self.config.shuffle_bandwidth_mbs.max(1e-9) * MIB as f64);
        ctx.emit(
            "bigdata",
            "shuffle_start",
            payload(vec![
                ("job", Json::UInt(job as u64)),
                ("stage", Json::UInt(stage as u64)),
                ("bytes", Json::UInt(shuffle_bytes)),
                ("secs", Json::Float(secs)),
            ]),
        );
        if let Some(hook) = self.on_shuffle.as_mut() {
            hook(ctx, job, true);
        }
        if self.on_transfer.is_some() {
            // Contended mode: the shuffle lasts as long as its flows do.
            let flows = self.launch_transfers(ctx, job, BdPhase::Shuffle, shuffle_bytes);
            if let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) {
                state.shuffle_xfers_pending = flows;
            }
            if flows == 0 {
                self.shuffle_done(ctx, job);
            }
        } else {
            ctx.send_self(SimDuration::from_secs_f64(secs), M::wrap(BigdataMsg::ShuffleDone(job)));
        }
    }

    /// One shuffle flow delivered (flow-level network mode).
    fn shuffle_xfer_done(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) else { return };
        state.shuffle_xfers_pending = state.shuffle_xfers_pending.saturating_sub(1);
        if state.shuffle_xfers_pending == 0 {
            self.shuffle_done(ctx, job);
        }
    }

    fn shuffle_done(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let degradation = self.degradation();
        let Some(state) = self.jobs.get(job).and_then(Option::as_ref) else { return };
        ctx.emit(
            "bigdata",
            "shuffle_end",
            payload(vec![
                ("job", Json::UInt(job as u64)),
                ("stage", Json::UInt(state.stage as u64)),
            ]),
        );
        if let Some(hook) = self.on_shuffle.as_mut() {
            hook(ctx, job, false);
        }
        let state = self.jobs[job].as_ref().expect("job state checked above");
        let secs = state.healthy_map_secs * self.config.reduce_factor * degradation;
        ctx.send_self(SimDuration::from_secs_f64(secs), M::wrap(BigdataMsg::ReduceDone(job)));
    }

    fn reduce_done(&mut self, ctx: &mut Context<'_, M>, job: usize) {
        let now = ctx.now();
        let Some(state) = self.jobs.get_mut(job).and_then(Option::as_mut) else { return };
        ctx.emit(
            "bigdata",
            "stage_finish",
            payload(vec![
                ("job", Json::UInt(job as u64)),
                ("stage", Json::UInt(state.stage as u64)),
                ("secs", Json::Float((now - state.stage_started).as_secs_f64())),
            ]),
        );
        state.stage += 1;
        if state.stage < self.config.stages_per_job {
            self.start_map(ctx, job);
        } else {
            let makespan = (now - state.submitted).as_secs_f64();
            let stages = state.stage;
            self.jobs[job] = None;
            self.completed += 1;
            ctx.emit(
                "bigdata",
                "job_finish",
                payload(vec![
                    ("job", Json::UInt(job as u64)),
                    ("makespan_secs", Json::Float(makespan)),
                    ("stages", Json::UInt(stages as u64)),
                ]),
            );
        }
    }

    fn node_fail(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if node >= self.machines {
            return;
        }
        self.dead_nodes += 1;
        let under = self.store.fail_node(NodeId(node));
        ctx.emit(
            "bigdata",
            "node_fail",
            payload(vec![
                ("node", Json::UInt(node as u64)),
                ("under_replicated", Json::UInt(under as u64)),
            ]),
        );
        if under > 0 {
            ctx.send_self(
                SimDuration::from_secs_f64(self.config.recovery_delay_secs),
                M::wrap(BigdataMsg::Recover),
            );
        }
    }

    fn node_repair(&mut self, ctx: &mut Context<'_, M>, node: u32) {
        if node >= self.machines || self.dead_nodes == 0 {
            return;
        }
        // The node rejoins as compute capacity; its disk comes back empty
        // (replicas were already rebuilt elsewhere), so the store keeps it
        // out of placement decisions.
        self.dead_nodes -= 1;
        ctx.emit("bigdata", "node_repair", payload(vec![("node", Json::UInt(node as u64))]));
    }

    fn recover(&mut self, ctx: &mut Context<'_, M>) {
        let created = self.store.re_replicate();
        ctx.emit(
            "bigdata",
            "re_replicate",
            payload(vec![("created", Json::UInt(created as u64))]),
        );
    }
}

impl<M: MessageEnvelope<BigdataMsg>> Actor<M> for DataflowActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            BigdataMsg::Start => self.start(ctx),
            BigdataMsg::Submit(job) => self.submit(ctx, job),
            BigdataMsg::MapDone(job) => self.map_done(ctx, job),
            BigdataMsg::MapXferDone(job) => self.map_xfer_done(ctx, job),
            BigdataMsg::ShuffleDone(job) => self.shuffle_done(ctx, job),
            BigdataMsg::ShuffleXferDone(job) => self.shuffle_xfer_done(ctx, job),
            BigdataMsg::ReduceDone(job) => self.reduce_done(ctx, job),
            BigdataMsg::NodeFail(node) => self.node_fail(ctx, node),
            BigdataMsg::NodeRepair(node) => self.node_repair(ctx, node),
            BigdataMsg::Recover => self.recover(ctx),
        }
    }
}

/// Runs the big-data stack standalone on a single-actor simulation — the
/// thin wrapper equivalent of composing [`DataflowActor`] into a scenario.
/// Returns the trace; every metric is derived from it.
pub fn run_bigdata_standalone(
    config: &BigdataConfig,
    machines: u32,
    seed: u64,
    horizon: SimTime,
) -> TraceBus {
    let mut actor: DataflowActor<'_, BigdataMsg> =
        DataflowActor::new(config.clone(), machines, RngStream::new(seed, "bigdata"));
    let mut sim: Simulation<'_, BigdataMsg> = Simulation::new(seed);
    sim.set_horizon(horizon);
    let id = sim.add_actor(&mut actor);
    sim.schedule(SimTime::ZERO, id, BigdataMsg::Start);
    sim.run();
    sim.take_trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3600;

    #[test]
    fn standalone_run_completes_all_jobs_and_traces_stages() {
        let config = BigdataConfig::default();
        let trace = run_bigdata_standalone(&config, 32, 7, SimTime::from_secs(8 * HOUR));
        assert_eq!(trace.count("bigdata", "job_submit"), config.jobs);
        assert_eq!(trace.count("bigdata", "job_finish"), config.jobs);
        assert_eq!(
            trace.count("bigdata", "stage_finish"),
            config.jobs * config.stages_per_job
        );
        assert_eq!(
            trace.count("bigdata", "shuffle_start"),
            trace.count("bigdata", "shuffle_end")
        );
    }

    #[test]
    fn standalone_run_is_deterministic() {
        let config = BigdataConfig::default();
        let a = run_bigdata_standalone(&config, 24, 11, SimTime::from_secs(6 * HOUR));
        let b = run_bigdata_standalone(&config, 24, 11, SimTime::from_secs(6 * HOUR));
        assert_eq!(a.to_json_string(), b.to_json_string());
    }

    #[test]
    fn node_failures_degrade_makespan_and_trigger_re_replication() {
        let config = BigdataConfig { jobs: 2, ..Default::default() };
        let horizon = SimTime::from_secs(8 * HOUR);

        let healthy = run_bigdata_standalone(&config, 16, 3, horizon);

        // Same run, but a third of the fleet dies just after job 0's input
        // lands (so blocks exist to re-replicate).
        let mut actor: DataflowActor<'_, BigdataMsg> =
            DataflowActor::new(config.clone(), 16, RngStream::new(3, "bigdata"));
        let mut sim: Simulation<'_, BigdataMsg> = Simulation::new(3);
        sim.set_horizon(horizon);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::ZERO, id, BigdataMsg::Start);
        for node in 0..5 {
            sim.schedule(SimTime::from_secs(1), id, BigdataMsg::NodeFail(node));
        }
        sim.run();
        let degraded = sim.take_trace();

        assert_eq!(degraded.count("bigdata", "node_fail"), 5);
        assert!(degraded.count("bigdata", "re_replicate") >= 1);
        let last_finish = |t: &TraceBus| {
            t.select("bigdata", "job_finish").last().map(|e| e.at).unwrap()
        };
        assert!(
            last_finish(&degraded) > last_finish(&healthy),
            "failures must stretch the critical path"
        );
    }
}
