//! The storage engine of the Figure 1 big-data stack: a block store with
//! rack-aware replica placement (HDFS-style), locality queries, and
//! re-replication after node failures.

use mcs_simcore::rng::RngStream;
use std::collections::HashMap;

/// Identifies a storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifies a block of a stored file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u64);

/// A stored file: a name and its block list.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredFile {
    /// File name.
    pub name: String,
    /// Blocks, in file order.
    pub blocks: Vec<BlockId>,
    /// Size of each block, bytes.
    pub block_size: u64,
}

/// A rack-aware replicated block store.
#[derive(Debug, Clone)]
pub struct BlockStore {
    nodes_per_rack: u32,
    node_count: u32,
    replication: usize,
    files: HashMap<String, StoredFile>,
    placements: HashMap<BlockId, Vec<NodeId>>,
    dead: Vec<bool>,
    next_block: u64,
    rng: RngStream,
}

impl BlockStore {
    /// Creates a store over `node_count` nodes grouped into racks of
    /// `nodes_per_rack`, with `replication` replicas per block.
    ///
    /// # Panics
    /// Panics when any parameter is zero or replication exceeds node count.
    pub fn new(node_count: u32, nodes_per_rack: u32, replication: usize, seed: u64) -> Self {
        assert!(node_count > 0 && nodes_per_rack > 0 && replication > 0);
        assert!(replication <= node_count as usize, "replication exceeds nodes");
        BlockStore {
            nodes_per_rack,
            node_count,
            replication,
            files: HashMap::new(),
            placements: HashMap::new(),
            dead: vec![false; node_count as usize],
            next_block: 0,
            rng: RngStream::new(seed, "block-store"),
        }
    }

    /// The rack of a node.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        node.0 / self.nodes_per_rack
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// Stores a file of `size_bytes` split into `block_size` blocks.
    /// Placement follows the HDFS heuristic: first replica on a random
    /// live node, second on a different rack, third on the second's rack.
    ///
    /// # Panics
    /// Panics when `block_size == 0` or a file with this name exists.
    pub fn put(&mut self, name: &str, size_bytes: u64, block_size: u64) -> &StoredFile {
        assert!(block_size > 0, "block size must be positive");
        assert!(!self.files.contains_key(name), "file {name} already stored");
        let block_count = size_bytes.div_ceil(block_size).max(1);
        let mut blocks = Vec::with_capacity(block_count as usize);
        for _ in 0..block_count {
            let id = BlockId(self.next_block);
            self.next_block += 1;
            let replicas = self.place_block();
            self.placements.insert(id, replicas);
            blocks.push(id);
        }
        let file = StoredFile { name: name.to_owned(), blocks, block_size };
        self.files.insert(name.to_owned(), file);
        &self.files[name]
    }

    fn live_nodes(&self) -> Vec<NodeId> {
        (0..self.node_count)
            .filter(|&n| !self.dead[n as usize])
            .map(NodeId)
            .collect()
    }

    fn place_block(&mut self) -> Vec<NodeId> {
        let live = self.live_nodes();
        assert!(!live.is_empty(), "no live nodes left");
        let mut replicas = Vec::with_capacity(self.replication);
        let first = live[self.rng.uniform_usize(live.len())];
        replicas.push(first);
        // Second replica off-rack, if any other rack has live nodes.
        let off_rack: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|n| self.rack_of(*n) != self.rack_of(first) && !replicas.contains(n))
            .collect();
        if replicas.len() < self.replication {
            if let Some(&second) = if off_rack.is_empty() {
                None
            } else {
                Some(&off_rack[self.rng.uniform_usize(off_rack.len())])
            } {
                replicas.push(second);
                // Third on the second's rack when possible.
                let same_rack: Vec<NodeId> = live
                    .iter()
                    .copied()
                    .filter(|n| self.rack_of(*n) == self.rack_of(second) && !replicas.contains(n))
                    .collect();
                if replicas.len() < self.replication && !same_rack.is_empty() {
                    replicas.push(same_rack[self.rng.uniform_usize(same_rack.len())]);
                }
            }
        }
        // Fill any remainder from arbitrary live nodes.
        while replicas.len() < self.replication {
            let candidates: Vec<NodeId> =
                live.iter().copied().filter(|n| !replicas.contains(n)).collect();
            if candidates.is_empty() {
                break;
            }
            replicas.push(candidates[self.rng.uniform_usize(candidates.len())]);
        }
        replicas
    }

    /// The file named `name`, if stored.
    pub fn file(&self, name: &str) -> Option<&StoredFile> {
        self.files.get(name)
    }

    /// Live replica locations of a block (dead nodes filtered out).
    pub fn locations(&self, block: BlockId) -> Vec<NodeId> {
        self.placements
            .get(&block)
            .map(|v| v.iter().copied().filter(|n| !self.dead[n.0 as usize]).collect())
            .unwrap_or_default()
    }

    /// Marks a node dead; its replicas become unavailable. Returns how many
    /// blocks dropped below the replication target.
    pub fn fail_node(&mut self, node: NodeId) -> usize {
        self.dead[node.0 as usize] = true;
        self.placements
            .values()
            .filter(|replicas| {
                replicas.iter().filter(|n| !self.dead[n.0 as usize]).count() < self.replication
            })
            .count()
    }

    /// Re-replicates under-replicated blocks onto live nodes. Returns the
    /// number of new replicas created.
    pub fn re_replicate(&mut self) -> usize {
        let live = self.live_nodes();
        let blocks: Vec<BlockId> = self.placements.keys().copied().collect();
        let mut created = 0;
        for b in blocks {
            loop {
                let replicas = self.placements[&b].clone();
                let live_replicas: Vec<NodeId> =
                    replicas.iter().copied().filter(|n| !self.dead[n.0 as usize]).collect();
                if live_replicas.len() >= self.replication {
                    break;
                }
                let candidates: Vec<NodeId> = live
                    .iter()
                    .copied()
                    .filter(|n| !live_replicas.contains(n))
                    .collect();
                if candidates.is_empty() {
                    break;
                }
                let target = candidates[self.rng.uniform_usize(candidates.len())];
                let entry = self.placements.get_mut(&b).expect("known block");
                entry.retain(|n| !self.dead[n.0 as usize]);
                entry.push(target);
                created += 1;
            }
        }
        created
    }

    /// True when `node` holds a live replica of `block`.
    pub fn is_local(&self, block: BlockId, node: NodeId) -> bool {
        self.locations(block).contains(&node)
    }

    /// True when `node` shares a rack with a live replica of `block`.
    pub fn is_rack_local(&self, block: BlockId, node: NodeId) -> bool {
        let rack = self.rack_of(node);
        self.locations(block).iter().any(|n| self.rack_of(*n) == rack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> BlockStore {
        BlockStore::new(12, 4, 3, 7)
    }

    #[test]
    fn put_splits_into_blocks() {
        let mut s = store();
        let f = s.put("input", 1000, 128);
        assert_eq!(f.blocks.len(), 8);
        assert_eq!(f.block_size, 128);
        assert!(s.file("input").is_some());
        assert!(s.file("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "already stored")]
    fn duplicate_file_rejected() {
        let mut s = store();
        s.put("x", 10, 10);
        s.put("x", 10, 10);
    }

    #[test]
    fn replication_count_met() {
        let mut s = store();
        let blocks = s.put("f", 10_000, 100).blocks.clone();
        for b in blocks {
            assert_eq!(s.locations(b).len(), 3);
        }
    }

    #[test]
    fn replicas_span_racks() {
        let mut s = store();
        let blocks = s.put("f", 10_000, 100).blocks.clone();
        let mut multi_rack = 0;
        for b in &blocks {
            let racks: std::collections::HashSet<u32> =
                s.locations(*b).iter().map(|n| s.rack_of(*n)).collect();
            if racks.len() >= 2 {
                multi_rack += 1;
            }
        }
        assert_eq!(multi_rack, blocks.len(), "every block should span ≥2 racks");
    }

    #[test]
    fn node_failure_and_re_replication() {
        let mut s = store();
        let blocks = s.put("f", 5_000, 100).blocks.clone();
        let victim = s.locations(blocks[0])[0];
        let under = s.fail_node(victim);
        assert!(under > 0, "failing a replica holder must under-replicate something");
        let created = s.re_replicate();
        assert!(created >= under);
        for b in &blocks {
            assert_eq!(s.locations(*b).len(), 3, "block {b:?} not re-replicated");
            assert!(!s.locations(*b).contains(&victim));
        }
    }

    #[test]
    fn locality_queries() {
        let mut s = store();
        let b = s.put("f", 100, 100).blocks[0];
        let holder = s.locations(b)[0];
        assert!(s.is_local(b, holder));
        assert!(s.is_rack_local(b, holder));
        // A node on a rack with no replica: find one.
        let replica_racks: std::collections::HashSet<u32> =
            s.locations(b).iter().map(|n| s.rack_of(*n)).collect();
        if let Some(outsider) =
            (0..12).map(NodeId).find(|n| !replica_racks.contains(&s.rack_of(*n)))
        {
            assert!(!s.is_local(b, outsider));
            assert!(!s.is_rack_local(b, outsider));
        }
    }

    #[test]
    fn deterministic_placement() {
        let mut a = BlockStore::new(12, 4, 3, 9);
        let mut b = BlockStore::new(12, 4, 3, 9);
        let fa = a.put("f", 10_000, 100).blocks.clone();
        let fb = b.put("f", 10_000, 100).blocks.clone();
        for (x, y) in fa.iter().zip(&fb) {
            assert_eq!(a.locations(*x), b.locations(*y));
        }
    }
}
