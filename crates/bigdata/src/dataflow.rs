//! The high-level-language layer of the Figure 1 stack: a small dataflow
//! plan (Pig/Hive-style) that *compiles to MapReduce jobs* on the execution
//! engine below it, reporting per-stage timing — applications use the top
//! layer, but performance is produced by the whole stack (the paper's
//! central observation about Figure 1).

use crate::mapreduce::{JobMetrics, MapReduceEngine};

/// A record of the analytics domain: a key and a numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Grouping key.
    pub key: String,
    /// Measure.
    pub value: f64,
}

impl Record {
    /// Convenience constructor.
    pub fn new(key: &str, value: f64) -> Self {
        Record { key: key.to_owned(), value }
    }
}

/// One operator of the dataflow plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Keep records with `value >= min`.
    FilterMin {
        /// Inclusive lower bound.
        min: f64,
    },
    /// Multiply every value by `factor`.
    Scale {
        /// Multiplier.
        factor: f64,
    },
    /// Group by key, summing values. Terminal aggregation.
    GroupSum,
    /// Group by key, counting records.
    GroupCount,
    /// Group by key, averaging values.
    GroupMean,
}

impl Op {
    /// Stable operator name for plan explanations.
    pub fn name(&self) -> &'static str {
        match self {
            Op::FilterMin { .. } => "filter",
            Op::Scale { .. } => "scale",
            Op::GroupSum => "group-sum",
            Op::GroupCount => "group-count",
            Op::GroupMean => "group-mean",
        }
    }

    /// True when the operator needs a shuffle (compiles to a full
    /// MapReduce job rather than a map-only stage).
    pub fn is_aggregation(&self) -> bool {
        matches!(self, Op::GroupSum | Op::GroupCount | Op::GroupMean)
    }
}

/// A dataflow plan: a linear chain of operators.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    ops: Vec<Op>,
}

impl Plan {
    /// An empty plan (identity).
    pub fn new() -> Self {
        Plan::default()
    }

    /// Appends an operator.
    pub fn then(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// The operators.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Human-readable compilation: which stages become map-only and which
    /// become full MapReduce jobs (the HLL → programming-model lowering).
    pub fn explain(&self) -> String {
        let mut out = String::from("plan:");
        for op in &self.ops {
            out.push_str(&format!(
                " {}[{}]",
                op.name(),
                if op.is_aggregation() { "map+shuffle+reduce" } else { "map-only" }
            ));
        }
        out
    }
}

/// Timing of one executed stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Operator name.
    pub op: String,
    /// Whether the stage shuffled.
    pub shuffled: bool,
    /// Records entering the stage.
    pub input_records: usize,
    /// Records leaving the stage.
    pub output_records: usize,
    /// Wall time, seconds.
    pub secs: f64,
}

/// Executes `plan` over `data` on `engine`, returning the final records
/// (sorted by key for aggregations) and per-stage reports.
pub fn execute(
    plan: &Plan,
    mut data: Vec<Record>,
    engine: &MapReduceEngine,
) -> (Vec<Record>, Vec<StageReport>) {
    let mut reports = Vec::with_capacity(plan.ops().len());
    for op in plan.ops() {
        let input_records = data.len();
        let (next, metrics, shuffled) = run_stage(op, data, engine);
        reports.push(StageReport {
            op: op.name().to_owned(),
            shuffled,
            input_records,
            output_records: next.len(),
            secs: metrics.total_secs(),
        });
        data = next;
    }
    (data, reports)
}

fn run_stage(
    op: &Op,
    data: Vec<Record>,
    engine: &MapReduceEngine,
) -> (Vec<Record>, JobMetrics, bool) {
    match op {
        Op::FilterMin { min } => {
            let min = *min;
            let (out, m) = engine.map_only(&data, move |r: &Record, out: &mut Vec<Record>| {
                if r.value >= min {
                    out.push(r.clone());
                }
            });
            (out, m, false)
        }
        Op::Scale { factor } => {
            let factor = *factor;
            let (out, m) = engine.map_only(&data, move |r: &Record, out: &mut Vec<Record>| {
                out.push(Record { key: r.key.clone(), value: r.value * factor });
            });
            (out, m, false)
        }
        Op::GroupSum => {
            let (out, m) = engine.run(
                &data,
                |r: &Record, out: &mut Vec<(String, f64)>| out.push((r.key.clone(), r.value)),
                |_k, vs: &[f64]| vs.iter().sum::<f64>(),
            );
            (out.into_iter().map(|(k, v)| Record { key: k, value: v }).collect(), m, true)
        }
        Op::GroupCount => {
            let (out, m) = engine.run(
                &data,
                |r: &Record, out: &mut Vec<(String, f64)>| out.push((r.key.clone(), 1.0)),
                |_k, vs: &[f64]| vs.len() as f64,
            );
            (out.into_iter().map(|(k, v)| Record { key: k, value: v }).collect(), m, true)
        }
        Op::GroupMean => {
            let (out, m) = engine.run(
                &data,
                |r: &Record, out: &mut Vec<(String, f64)>| out.push((r.key.clone(), r.value)),
                |_k, vs: &[f64]| vs.iter().sum::<f64>() / vs.len() as f64,
            );
            (out.into_iter().map(|(k, v)| Record { key: k, value: v }).collect(), m, true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Record> {
        vec![
            Record::new("a", 1.0),
            Record::new("b", 10.0),
            Record::new("a", 3.0),
            Record::new("b", 20.0),
            Record::new("c", 0.5),
        ]
    }

    #[test]
    fn group_sum_pipeline() {
        let plan = Plan::new().then(Op::FilterMin { min: 1.0 }).then(Op::GroupSum);
        let (out, reports) = execute(&plan, data(), &MapReduceEngine::serial());
        assert_eq!(
            out,
            vec![Record::new("a", 4.0), Record::new("b", 30.0)]
        );
        assert_eq!(reports.len(), 2);
        assert!(!reports[0].shuffled);
        assert!(reports[1].shuffled);
        assert_eq!(reports[0].input_records, 5);
        assert_eq!(reports[0].output_records, 4);
    }

    #[test]
    fn scale_then_mean() {
        let plan = Plan::new().then(Op::Scale { factor: 2.0 }).then(Op::GroupMean);
        let (out, _) = execute(&plan, data(), &MapReduceEngine::serial());
        let a = out.iter().find(|r| r.key == "a").unwrap();
        assert!((a.value - 4.0).abs() < 1e-12); // mean(2, 6)
    }

    #[test]
    fn group_count() {
        let plan = Plan::new().then(Op::GroupCount);
        let (out, _) = execute(&plan, data(), &MapReduceEngine::serial());
        assert_eq!(
            out,
            vec![Record::new("a", 2.0), Record::new("b", 2.0), Record::new("c", 1.0)]
        );
    }

    #[test]
    fn explain_mentions_stage_kinds() {
        let plan = Plan::new().then(Op::FilterMin { min: 0.0 }).then(Op::GroupSum);
        let e = plan.explain();
        assert!(e.contains("filter[map-only]"));
        assert!(e.contains("group-sum[map+shuffle+reduce]"));
    }

    #[test]
    fn parallel_matches_serial_for_aggregations() {
        let big: Vec<Record> =
            (0..1_000).map(|i| Record::new(&format!("k{}", i % 17), i as f64)).collect();
        let plan = Plan::new().then(Op::FilterMin { min: 100.0 }).then(Op::GroupSum);
        let (serial, _) = execute(&plan, big.clone(), &MapReduceEngine::serial());
        let (par, _) =
            execute(&plan, big, &MapReduceEngine { threads: 4, combine: false });
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_plan_is_identity() {
        let (out, reports) = execute(&Plan::new(), data(), &MapReduceEngine::serial());
        assert_eq!(out, data());
        assert!(reports.is_empty());
    }
}
