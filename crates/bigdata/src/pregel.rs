//! The Pregel sub-ecosystem of Figure 1: graph analytics as a stack citizen.
//!
//! Runs `mcs-graph` BSP programs over edge lists held in the storage
//! engine, charging storage-read time so that the per-layer breakdown of the
//! Figure 1 experiment covers *Storage → Execution → Programming model*.
//! The same workload can instead be lowered onto MapReduce (iterated jobs),
//! which is how the crossover between the two sub-ecosystems is measured.

use crate::mapreduce::MapReduceEngine;
use crate::storage::{BlockStore, StoredFile};
use mcs_graph::algorithms::pagerank::DAMPING;
use mcs_graph::bsp::BspEngine;
use mcs_graph::graph::Graph;
use std::time::Instant;

/// Per-layer timing of one analytics run over the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackTiming {
    /// Simulated storage-read seconds (blocks / aggregate scan bandwidth).
    pub storage_secs: f64,
    /// Measured compute seconds in the execution engine.
    pub compute_secs: f64,
    /// Supersteps (Pregel) or jobs (MapReduce) executed.
    pub rounds: usize,
}

impl StackTiming {
    /// Total stack time, seconds.
    pub fn total_secs(&self) -> f64 {
        self.storage_secs + self.compute_secs
    }
}

/// Simulated time to scan a file from the block store: every block is read
/// once at `per_node_mbps` per live replica-holding node, reads spread
/// perfectly across nodes.
pub fn scan_time_secs(store: &BlockStore, file: &StoredFile, per_node_mbps: f64) -> f64 {
    let bytes = file.blocks.len() as u64 * file.block_size;
    let nodes = store.node_count().max(1) as f64;
    (bytes as f64 / (1024.0 * 1024.0)) / (per_node_mbps * nodes)
}

/// PageRank on the Pregel sub-ecosystem: one BSP run.
pub fn pagerank_pregel(
    store: &BlockStore,
    file: &StoredFile,
    graph: &Graph,
    iterations: usize,
    engine: &BspEngine,
) -> (Vec<f64>, StackTiming) {
    let storage_secs = scan_time_secs(store, file, 200.0);
    let t = Instant::now();
    let ranks = mcs_graph::algorithms::pagerank(graph, iterations, engine);
    (
        ranks,
        StackTiming {
            storage_secs,
            compute_secs: t.elapsed().as_secs_f64(),
            rounds: iterations,
        },
    )
}

/// PageRank lowered onto MapReduce: one full job per iteration, each
/// re-reading the edge list (the classic pre-Pregel formulation whose cost
/// the Pregel paper motivated against).
pub fn pagerank_mapreduce(
    store: &BlockStore,
    file: &StoredFile,
    graph: &Graph,
    iterations: usize,
    engine: &MapReduceEngine,
) -> (Vec<f64>, StackTiming) {
    let n = graph.vertex_count() as usize;
    let mut ranks = vec![1.0 / n.max(1) as f64; n];
    // Adjacency as input records: (vertex, its out-neighbors).
    let adjacency: Vec<(u32, Vec<u32>)> =
        graph.vertices().map(|v| (v, graph.neighbors(v).to_vec())).collect();
    let mut compute_secs = 0.0;
    let mut storage_secs = 0.0;
    for _ in 0..iterations {
        // Each iteration re-scans the edge list from storage.
        storage_secs += scan_time_secs(store, file, 200.0);
        let t = Instant::now();
        let ranks_ref = &ranks;
        let (contribs, _) = engine.run(
            &adjacency,
            move |&(v, ref neigh): &(u32, Vec<u32>), out: &mut Vec<(u32, f64)>| {
                let r = ranks_ref[v as usize];
                if neigh.is_empty() {
                    // Dangling mass: spread uniformly via a sentinel key
                    // handled below (key u32::MAX).
                    out.push((u32::MAX, r));
                } else {
                    let share = r / neigh.len() as f64;
                    for &t in neigh {
                        out.push((t, share));
                    }
                }
            },
            |_k, vs: &[f64]| vs.iter().sum::<f64>(),
        );
        let mut incoming = vec![0.0f64; n];
        let mut dangling = 0.0;
        for (k, v) in contribs {
            if k == u32::MAX {
                dangling += v;
            } else {
                incoming[k as usize] = v;
            }
        }
        let base = (1.0 - DAMPING) / n as f64 + DAMPING * dangling / n as f64;
        for (r, inc) in ranks.iter_mut().zip(&incoming) {
            *r = base + DAMPING * inc;
        }
        compute_secs += t.elapsed().as_secs_f64();
    }
    (ranks, StackTiming { storage_secs, compute_secs, rounds: iterations })
}

/// A one-shot aggregation on MapReduce (degree distribution): the workload
/// family where MapReduce is the right sub-ecosystem.
pub fn degree_histogram_mapreduce(
    store: &BlockStore,
    file: &StoredFile,
    graph: &Graph,
    engine: &MapReduceEngine,
) -> (Vec<(u64, u64)>, StackTiming) {
    let storage_secs = scan_time_secs(store, file, 200.0);
    let t = Instant::now();
    let vertices: Vec<u32> = graph.vertices().collect();
    let (hist, _) = engine.run(
        &vertices,
        |&v: &u32, out: &mut Vec<(u64, u64)>| out.push((graph.out_degree(v), 1)),
        |_k, vs: &[u64]| vs.iter().sum::<u64>(),
    );
    (
        hist,
        StackTiming { storage_secs, compute_secs: t.elapsed().as_secs_f64(), rounds: 1 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_graph::generate::rmat;
    use mcs_simcore::rng::RngStream;

    fn setup() -> (BlockStore, StoredFile, Graph) {
        let mut rng = RngStream::new(1, "pregel");
        let graph = rmat(8, 8, (0.57, 0.19, 0.19), &mut rng);
        let mut store = BlockStore::new(8, 4, 3, 2);
        let bytes = graph.edge_count() * 8;
        let file = store.put("edges", bytes, 1 << 20).clone();
        (store, file, graph)
    }

    #[test]
    fn mapreduce_pagerank_matches_pregel() {
        let (store, file, graph) = setup();
        let (pregel, _) =
            pagerank_pregel(&store, &file, &graph, 15, &BspEngine::parallel(2));
        let (mr, _) = pagerank_mapreduce(
            &store,
            &file,
            &graph,
            15,
            &MapReduceEngine { threads: 2, combine: false },
        );
        for (a, b) in pregel.iter().zip(&mr) {
            assert!((a - b).abs() < 1e-9, "pregel {a} vs mapreduce {b}");
        }
    }

    #[test]
    fn mapreduce_pays_storage_per_iteration() {
        let (store, file, graph) = setup();
        let (_, t_pregel) =
            pagerank_pregel(&store, &file, &graph, 10, &BspEngine::serial());
        let (_, t_mr) =
            pagerank_mapreduce(&store, &file, &graph, 10, &MapReduceEngine::serial());
        assert!(
            t_mr.storage_secs > t_pregel.storage_secs * 5.0,
            "mr {} vs pregel {}",
            t_mr.storage_secs,
            t_pregel.storage_secs
        );
    }

    #[test]
    fn degree_histogram_counts_vertices() {
        let (store, file, graph) = setup();
        let (hist, timing) = degree_histogram_mapreduce(
            &store,
            &file,
            &graph,
            &MapReduceEngine::serial(),
        );
        let total: u64 = hist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, graph.vertex_count() as u64);
        assert_eq!(timing.rounds, 1);
    }

    #[test]
    fn scan_time_scales_with_size() {
        let mut store = BlockStore::new(4, 2, 2, 3);
        let small = store.put("s", 10 << 20, 1 << 20).clone();
        let large = store.put("l", 100 << 20, 1 << 20).clone();
        assert!(scan_time_secs(&store, &large, 100.0) > scan_time_secs(&store, &small, 100.0) * 5.0);
    }
}
