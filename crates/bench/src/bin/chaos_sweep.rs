//! E6 — deterministic chaos campaign with invariant monitors and shrinking.
//!
//! Default mode runs the [`mcs_bench::experiments::ChaosSweep`] experiment
//! (`chaos_sweep [seed]`). With `--check-invariants`, it instead replays the
//! default scenario configuration and evaluates the full built-in invariant
//! suite over its trace, printing one status line per invariant and exiting
//! non-zero on any violation — the gate `scripts/verify.sh` runs against the
//! golden default-config trace.

use mcs::chaos::{builtin_suite, InvariantCx};
use mcs::core::scenario::{Scenario, ScenarioConfig};
use mcs_bench::experiments::ChaosSweep;

fn check_invariants() -> ! {
    let cfg = ScenarioConfig::default();
    let cx = InvariantCx::from_config(&cfg);
    let outcome = Scenario::new(cfg).run();
    let mut failed = 0usize;
    for inv in builtin_suite() {
        let violations = inv.check(&outcome.trace, &cx);
        if violations.is_empty() {
            println!("ok   {}", inv.name());
        } else {
            failed += violations.len();
            println!("FAIL {} ({} violations)", inv.name(), violations.len());
            for v in violations {
                eprintln!("  {v}");
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} invariant violation(s) on the default-config trace");
        std::process::exit(1);
    }
    println!("all invariants hold on the default-config trace ({} events)", outcome.trace.len());
    std::process::exit(0);
}

fn main() {
    if std::env::args().any(|arg| arg == "--check-invariants") {
        check_invariants();
    }
    mcs_bench::run_cli(&ChaosSweep);
}
