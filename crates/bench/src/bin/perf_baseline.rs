//! The tracked perf baseline of the simulation core (`BENCH_*.json`).
//!
//! Nine wall-clock benchmarks cover the hot paths every experiment drives:
//! raw engine dispatch, trace record + query, the composed-ecosystem
//! scenario, the full resilience-ablation sweep, the transfer-heavy
//! networked scenario (every cross-component byte a flow through the
//! `mcs-net` max-min allocator), the workflow scenario (DAG engine +
//! portfolio lookaheads + edge flows), and the scale-stress scenario under
//! both trace sinks (full retention vs streaming aggregation, plus
//! streaming at 10x the volume — the flat-memory claim as a measured
//! `peak_bytes` column). `--json PATH` writes the machine-readable baseline
//! (the series committed as `BENCH_4.json` / `BENCH_7.json` / `BENCH_9.json`
//! / `BENCH_10.json`), `--check PATH` re-parses a written baseline with
//! `mcs-simcore::codec` and validates its shape — the gate
//! `scripts/verify.sh` runs.
//!
//! Each benchmark carries the median measured *before* the ISSUE-4
//! fast-path work (interned trace identity, indexed queries, parallel
//! fan-out), so the JSON records the speedup trajectory, not just a number.

use mcs::prelude::*;
use mcs::simcore::codec::{self, Json};
use mcs::simcore::metrics::{summarize_trace, trace_gauge};
use mcs::simcore::trace::payload;
use mcs::core::scenario::{
    BigdataConfig, DagConfig, NetworkConfig, Scenario, ScenarioConfig,
};
use mcs_bench::experiments::resilience::run_ablation;
use mcs_bench::experiments::scale::scale_config;
use mcs_bench::harness::{black_box, format_secs, Harness, Stats};

/// Median wall-clock seconds measured at the pre-ISSUE-4 baseline commit
/// (seed state: owned-`String` trace identity, O(n) query scans, serial
/// sweeps), on the same reference machine the committed `BENCH_4.json` was
/// produced on. `0.0` means "not yet measured".
const BEFORE_MEDIANS: &[(&str, f64)] = &[
    ("engine/dispatch_200k", 12.00e-3),
    ("trace/record_query_20k", 11.41e-3),
    ("scenario/ecosystem_composed", 11.28e-3),
    ("scenario/resilience_ablation_sweep", 227.51e-3),
    ("scenario/ecosystem_networked", 0.0),
    ("scenario/ecosystem_dag", 0.0),
    // The scale benches have no pre-ISSUE-9 measurement: full retention at
    // these volumes was the problem the streaming sink removes.
    ("scale/stress_full_1x", 0.0),
    ("scale/stress_streaming_1x", 0.0),
    ("scale/stress_streaming_10x", 0.0),
];

fn before_median(name: &str) -> f64 {
    BEFORE_MEDIANS.iter().find(|(n, _)| *n == name).map_or(0.0, |(_, m)| *m)
}

/// A self-rescheduling actor: the cheapest possible dispatch loop, so the
/// bench isolates queue + delivery overhead.
struct Ticker {
    left: u32,
}

enum Tick {
    Tick,
}

impl Actor<Tick> for Ticker {
    fn handle(&mut self, ctx: &mut Context<'_, Tick>, _msg: Tick) {
        if self.left > 0 {
            self.left -= 1;
            ctx.send_self(SimDuration::from_millis(1), Tick::Tick);
        }
    }
}

fn bench_engine_dispatch(h: &mut Harness) {
    h.bench("engine/dispatch_200k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(7);
            let id = sim.add_actor(Ticker { left: 200_000 });
            sim.schedule(SimTime::ZERO, id, Tick::Tick);
            black_box(sim.run())
        })
    });
}

/// Records 20k events in the shape the subsystem actors emit (short fixed
/// component/event names, two-field payloads), then runs the query battery
/// the experiment reports drive: census, per-kind counts/selects/series,
/// and the two metric aggregators.
fn bench_trace_record_query(h: &mut Harness) {
    const COMPONENTS: [&str; 4] = ["rms", "faas", "autoscale", "failure"];
    const EVENTS: [&str; 3] = ["task_finish", "invoke", "outage"];
    h.bench("trace/record_query_20k", |b| {
        b.iter(|| {
            let mut bus = TraceBus::new();
            for i in 0..20_000u64 {
                let component = COMPONENTS[(i % 4) as usize];
                let event = EVENTS[(i % 3) as usize];
                bus.record(
                    SimTime::from_nanos(i * 1_000),
                    component,
                    event,
                    payload(vec![
                        ("latency_secs", Json::Float((i % 97) as f64 * 0.01)),
                        ("index", Json::UInt(i)),
                    ]),
                );
            }
            let mut acc = 0usize;
            acc += bus.counts().len();
            acc += bus.components().len();
            for component in COMPONENTS {
                for event in EVENTS {
                    acc += bus.count(component, event);
                    acc += bus.select(component, event).len();
                    acc += bus.series(component, event, "latency_secs").len();
                }
            }
            for component in COMPONENTS {
                if let Some(s) = summarize_trace(&bus, component, "invoke", "latency_secs") {
                    acc += s.count as usize;
                }
            }
            let gauge = trace_gauge(&bus, "faas", "invoke", "latency_secs", 0.0);
            black_box((acc, gauge.peak()))
        })
    });
}

fn bench_composed_scenario(h: &mut Harness) {
    h.bench("scenario/ecosystem_composed", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig { seed: 42, ..ScenarioConfig::default() };
            let out = Scenario::new(cfg).run();
            black_box((out.events_handled, out.trace.len()))
        })
    });
}

fn bench_ablation_sweep(h: &mut Harness) {
    h.bench("scenario/resilience_ablation_sweep", |b| {
        b.iter(|| {
            let rows = run_ablation(42);
            black_box(rows.len())
        })
    });
}

/// The composed scenario with the `mcs-net` fabric attached and a shuffle
/// workload on top: every FaaS payload, checkpoint restore, map/shuffle
/// transfer, and gaming state sync becomes a flow, so this times the
/// NetActor's allocate/settle cycle under realistic contention.
fn bench_networked_scenario(h: &mut Harness) {
    h.bench("scenario/ecosystem_networked", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig { seed: 42, ..ScenarioConfig::default() }
                .with_bigdata(BigdataConfig {
                    jobs: 2,
                    input_mb: 1_024,
                    ..BigdataConfig::default()
                })
                .with_network(NetworkConfig::default());
            let out = Scenario::new(cfg).run();
            black_box((out.events_handled, out.net_flows_delivered))
        })
    });
}

/// The workflow scenario: a mixed-class DAG stream under the per-class
/// portfolio (so every candidate pays its simulate-ahead lookahead) with
/// every edge payload a flow on the fabric.
fn bench_dag_scenario(h: &mut Harness) {
    h.bench("scenario/ecosystem_dag", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::bare(42, SimTime::from_secs(4 * 3600), 32)
                .with_dag(DagConfig::default())
                .with_network(NetworkConfig::default());
            let out = Scenario::new(cfg).run();
            black_box((out.events_handled, out.dag_jobs_finished))
        })
    });
}

/// The scale-stress scenario under each trace sink. The timing column
/// shows the streaming sink is not slower than full retention at equal
/// volume; the `peak_bytes` column shows it stays flat at 10x while full
/// retention's heap grows with the event count.
fn bench_scale_stress(h: &mut Harness) {
    let run = |factor: f64, streaming: bool| {
        let out = Scenario::new(scale_config(42, factor, streaming)).run();
        (out.events_handled, out.trace.recorded(), out.trace.approx_retained_bytes())
    };
    h.bench("scale/stress_full_1x", |b| b.iter(|| black_box(run(1.0, false))));
    h.bench("scale/stress_streaming_1x", |b| b.iter(|| black_box(run(1.0, true))));
    h.bench("scale/stress_streaming_10x", |b| b.iter(|| black_box(run(10.0, true))));
}

/// The machine-readable baseline: one object per benchmark with the
/// measured distribution, the peak heap growth, the pre-ISSUE-4 median,
/// and the speedup.
fn baseline_json(stats: &[Stats]) -> Json {
    let benchmarks: Vec<Json> = stats
        .iter()
        .map(|s| {
            let before = before_median(&s.name);
            let speedup =
                if before > 0.0 && s.median > 0.0 { before / s.median } else { 0.0 };
            Json::Obj(vec![
                ("name".into(), Json::Str(s.name.clone())),
                ("samples".into(), Json::UInt(s.samples as u64)),
                ("min_secs".into(), Json::Float(s.min)),
                ("median_secs".into(), Json::Float(s.median)),
                ("mean_secs".into(), Json::Float(s.mean)),
                ("max_secs".into(), Json::Float(s.max)),
                ("peak_bytes".into(), Json::UInt(s.peak_bytes)),
                ("before_median_secs".into(), Json::Float(before)),
                ("speedup".into(), Json::Float(speedup)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("issue".into(), Json::UInt(10)),
        ("group".into(), Json::Str("perf_baseline".to_owned())),
        ("benchmarks".into(), Json::Arr(benchmarks)),
    ])
}

/// Re-parses a written baseline and validates its shape; the verify.sh gate.
fn check_baseline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let issue: u64 = doc.field("issue").map_err(|e| e.to_string())?;
    if issue == 0 {
        return Err("issue number must be positive".to_owned());
    }
    let benchmarks = match doc.get("benchmarks") {
        Some(Json::Arr(items)) if !items.is_empty() => items,
        _ => return Err("missing or empty `benchmarks` array".to_owned()),
    };
    for b in benchmarks {
        let name: String = b.field("name").map_err(|e| e.to_string())?;
        for key in ["min_secs", "median_secs", "mean_secs", "max_secs"] {
            let v: f64 = b.field(key).map_err(|e| format!("{name}: {e}"))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name}: {key} = {v} is not a sane duration"));
            }
        }
        // Baselines before ISSUE-9 (BENCH_4, BENCH_7) predate the peak
        // memory column; when present it must be a sane byte count.
        if let Some(peak) = b.get("peak_bytes") {
            match peak {
                Json::UInt(_) => {}
                other => return Err(format!("{name}: peak_bytes = {other:?} is not a byte count")),
            }
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let [flag, path] = args.as_slice() {
        if flag == "--check" {
            match check_baseline(path) {
                Ok(()) => {
                    println!("perf_baseline: {path} parses and has a sane shape");
                    return;
                }
                Err(e) => {
                    eprintln!("perf_baseline: invalid baseline {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let mut h = Harness::new("perf_baseline");
    bench_engine_dispatch(&mut h);
    bench_trace_record_query(&mut h);
    bench_composed_scenario(&mut h);
    bench_ablation_sweep(&mut h);
    bench_networked_scenario(&mut h);
    bench_dag_scenario(&mut h);
    bench_scale_stress(&mut h);
    let stats = h.finish();

    for s in stats {
        let before = before_median(&s.name);
        if before > 0.0 {
            println!(
                "{}: median {} (before {}, speedup {:.2}x)",
                s.name,
                format_secs(s.median),
                format_secs(before),
                before / s.median,
            );
        }
    }

    if let [flag, path] = args.as_slice() {
        if flag == "--json" {
            let doc = baseline_json(stats);
            std::fs::write(path, codec::to_string(&doc) + "\n").unwrap_or_else(|e| {
                eprintln!("perf_baseline: write {path}: {e}");
                std::process::exit(1);
            });
            println!("perf_baseline: wrote {path}");
        }
    }
}
