fn main() {
    mcs_bench::run_cli(&mcs_bench::experiments::DagPortfolioExperiment);
}
