//! Figure 1 — the big-data ecosystem: four layers, and the MapReduce vs
//! Pregel sub-ecosystem crossover.
//!
//! The paper's Figure 1 is a reference architecture; the quantitative claim
//! behind it is that applications "use components across the full stack of
//! layers" and that the right sub-ecosystem depends on the workload. This
//! experiment (i) breaks one analytics job into per-layer time, and (ii)
//! sweeps PageRank iteration counts to find where Pregel overtakes
//! iterated MapReduce.

use mcs::prelude::*;
use mcs_bench::{f, print_table};

fn main() {
    println!("# Figure 1 — big-data ecosystem stack\n");
    let mut rng = RngStream::new(1, "fig1");
    let graph = rmat(13, 12, (0.57, 0.19, 0.19), &mut rng);
    let mut store = BlockStore::new(8, 4, 3, 1);
    let file = store.put("edges", graph.edge_count() * 8, 64 << 20).clone();
    println!(
        "dataset: R-MAT scale 13, {} vertices, {} edges\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    // (i) Layer breakdown: a dataflow program through HLL -> MR -> storage.
    println!("## per-layer breakdown of one HLL analytics plan");
    let records: Vec<Record> = (0..200_000)
        .map(|i| Record::new(&format!("k{}", i % 512), (i % 1000) as f64))
        .collect();
    let plan = Plan::new()
        .then(Op::FilterMin { min: 100.0 })
        .then(Op::Scale { factor: 0.001 })
        .then(Op::GroupSum);
    println!("{}", plan.explain());
    let engine = MapReduceEngine { threads: 4, combine: true };
    let (out, stages) = execute(&plan, records, &engine);
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|s| {
            vec![
                s.op.clone(),
                if s.shuffled { "map+shuffle+reduce" } else { "map-only" }.into(),
                s.input_records.to_string(),
                s.output_records.to_string(),
                f(s.secs * 1e3, 2),
            ]
        })
        .collect();
    print_table(&["stage", "lowering", "in", "out", "ms"], &rows);
    println!("final groups: {}\n", out.len());

    // (ii) The sub-ecosystem crossover: PageRank iterations.
    println!("## MapReduce vs Pregel sub-ecosystems (PageRank, total stack seconds)");
    let mut rows = Vec::new();
    for iters in [1usize, 2, 5, 10, 20] {
        let (_, t_mr) = pagerank_mapreduce(
            &store,
            &file,
            &graph,
            iters,
            &MapReduceEngine { threads: 4, combine: false },
        );
        let (_, t_pregel) =
            pagerank_pregel(&store, &file, &graph, iters, &BspEngine::parallel(4));
        let winner = if t_mr.total_secs() < t_pregel.total_secs() { "mapreduce" } else { "pregel" };
        rows.push(vec![
            iters.to_string(),
            f(t_mr.storage_secs, 2),
            f(t_mr.compute_secs, 2),
            f(t_mr.total_secs(), 2),
            f(t_pregel.storage_secs, 2),
            f(t_pregel.compute_secs, 2),
            f(t_pregel.total_secs(), 2),
            winner.into(),
        ]);
    }
    print_table(
        &["iters", "mr-io", "mr-cpu", "mr-total", "pregel-io", "pregel-cpu", "pregel-total", "winner"],
        &rows,
    );

    // One-shot aggregation stays MapReduce territory.
    let (_, hist) = degree_histogram_mapreduce(
        &store,
        &file,
        &graph,
        &MapReduceEngine { threads: 4, combine: true },
    );
    println!(
        "\none-shot degree histogram on MapReduce: {:.2}s total ({} round)",
        hist.total_secs(),
        hist.rounds
    );
    println!(
        "shape check: Pregel pays storage once; MapReduce pays it per iteration, so the\ncrossover arrives within a few iterations — the Figure 1 sub-ecosystem story."
    );
}
