//! Peak-heap instrumentation for the benchmark harness.
//!
//! A counting [`GlobalAlloc`] wrapper around the system allocator: every
//! allocation adds to a live-bytes counter, every deallocation subtracts,
//! and the high-water mark is kept in a second counter that measurements
//! reset at their start. The overhead is two relaxed atomic operations per
//! allocation — invisible next to the allocations themselves — which is
//! what lets the harness report a peak-memory column next to every timing
//! row and lets `perf_baseline` commit flat-memory claims (streaming trace
//! sinks) as checkable numbers rather than prose.
//!
//! The `#[global_allocator]` registration lives here, so every binary and
//! bench target of this crate is instrumented automatically. Library users
//! outside mcs-bench are unaffected.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`System`]-backed allocator that tracks live bytes and their peak.
pub struct PeakAlloc {
    live: AtomicU64,
    peak: AtomicU64,
}

/// The process-wide instrumented allocator.
#[global_allocator]
pub static PEAK_ALLOC: PeakAlloc = PeakAlloc::new();

impl PeakAlloc {
    const fn new() -> Self {
        PeakAlloc { live: AtomicU64::new(0), peak: AtomicU64::new(0) }
    }

    /// Heap bytes currently allocated (and not yet freed).
    pub fn live_bytes(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of [`Self::live_bytes`] since the last
    /// [`Self::reset_peak`] (or process start).
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Restarts the high-water mark from the current live count. Returns
    /// the live count so callers can report peak *growth* over a region
    /// (`peak_bytes() - baseline`).
    pub fn reset_peak(&self) -> u64 {
        let live = self.live.load(Ordering::Relaxed);
        self.peak.store(live, Ordering::Relaxed);
        live
    }

    fn add(&self, bytes: u64) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(live, Ordering::Relaxed);
    }

    fn sub(&self, bytes: u64) {
        self.live.fetch_sub(bytes, Ordering::Relaxed);
    }
}

// SAFETY: delegates every allocation verbatim to `System`; the counters are
// bookkeeping only and never affect the returned pointers.
unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            self.add(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            self.add(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.sub(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new >= old {
                self.add(new - old);
            } else {
                self.sub(old - new);
            }
        }
        new_ptr
    }
}

/// Renders a byte count with an adaptive binary unit.
pub fn format_bytes(bytes: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = bytes as f64;
    if b < KIB {
        format!("{bytes} B")
    } else if b < KIB * KIB {
        format!("{:.1} KiB", b / KIB)
    } else if b < KIB * KIB * KIB {
        format!("{:.1} MiB", b / (KIB * KIB))
    } else {
        format!("{:.2} GiB", b / (KIB * KIB * KIB))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_tracks_a_large_allocation() {
        let baseline = PEAK_ALLOC.reset_peak();
        let block = vec![7u8; 4 << 20];
        std::hint::black_box(&block);
        let grown = PEAK_ALLOC.peak_bytes().saturating_sub(baseline);
        assert!(grown >= 4 << 20, "peak growth {grown} should cover the 4 MiB block");
        drop(block);
        assert!(PEAK_ALLOC.live_bytes() < PEAK_ALLOC.peak_bytes());
    }

    #[test]
    fn reset_peak_restarts_from_live() {
        let held = vec![1u8; 1 << 20];
        let live = PEAK_ALLOC.reset_peak();
        assert!(live >= 1 << 20, "live {live} must include the held MiB");
        assert!(PEAK_ALLOC.peak_bytes() >= live);
        drop(held);
    }

    #[test]
    fn format_bytes_picks_unit() {
        assert_eq!(format_bytes(512), "512 B");
        assert!(format_bytes(8 << 10).ends_with("KiB"));
        assert!(format_bytes(8 << 20).ends_with("MiB"));
        assert!(format_bytes(8 << 30).ends_with("GiB"));
    }
}
