//! # mcs-bench — experiment harness for every figure and table of the paper
//!
//! One binary per paper artifact regenerates its rows/series
//! (`cargo run -p mcs-bench --release --bin <experiment>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1_bigdata_ecosystem` | Figure 1 — big-data stack, MapReduce vs Pregel sub-ecosystems |
//! | `fig2_evolution_timeline` | Figure 2 — technology evolution / lock-in dynamics |
//! | `fig3_datacenter_refarch` | Figure 3 — datacenter layers, full-stack run |
//! | `fig4_gaming_ecosystem` | Figure 4 — gaming functions |
//! | `fig5_faas_refarch` | Figure 5 — FaaS layers |
//! | `table1_methods` | Table 1 — measurement vs simulation vs formal model |
//! | `table2_principles` | Table 2 — the systems principles quantified |
//! | `table3_challenges` | Table 3 — one scenario per systems challenge |
//! | `table4_use_cases` | Table 4 — the six use-case domains |
//! | `table5_paradigms` | Table 5 — cluster/grid/cloud/MCS operating models |
//! | `ecosystem_composed` | Composed ecosystem — failures vs autoscaled FaaS vs portfolio batch (one engine run) |
//! | `resilience_ablation` | Resilience ablation — baseline vs retry/breaker/shedder/restart vs all-on under mixed faults |
//! | `ecosystem_full` | Full stack — the composed run plus bigdata + graph + gaming on one engine |
//! | `locality_contention` | Locality-aware vs blind placement contending on the `mcs-net` fabric |
//! | `chaos_sweep` | Chaos campaign — scripted fault schedules vs the trace-invariant suite, ddmin-shrunk reproducers (`--check-invariants` gates the golden default trace) |
//! | `scale_stress` | Streaming observability at scale — bounded-memory trace sinks vs full retention at 10M+ events |
//! | `dag_portfolio` | DAG workflow portfolio scheduling — per-class simulate-ahead vs every fixed policy on the shared fabric |
//! | `perf_baseline` | Tracked perf baseline of the simulation core (`--json`/`--check BENCH_4.json`) |
//!
//! Each binary is a thin wrapper over an [`experiments`] type implementing
//! [`mcs::experiment::Experiment`]; [`run_cli`] handles seed selection and
//! rendering, so `<experiment> [seed]` reruns any artifact at any seed.
//! (`perf_baseline` is the exception: it wraps the wall-clock [`harness`]
//! around the engine/trace/scenario hot paths — with [`peakmem`] peak-heap
//! columns — and emits the committed `BENCH_*.json` speedup records.)
//!
//! The sweep-shaped experiments (`ecosystem_composed`'s autoscaler
//! portfolio, `resilience_ablation`'s grid, `chaos_sweep`'s schedule×seed
//! campaign) fan replications out over
//! `mcs::simcore::par` worker threads; `MCS_PAR_WORKERS` sets the width and
//! the output is byte-identical at any setting.
//!
//! In-house benches (`cargo bench -p mcs-bench`) time the kernels behind
//! each artifact plus the ablations called out in DESIGN.md, using the
//! wall-clock [`harness`].

use mcs::experiment::Experiment;
use mcs::prelude::*;

pub mod experiments;
pub mod harness;
pub mod peakmem;

/// The seed every experiment binary uses unless overridden.
pub const DEFAULT_SEED: u64 = 42;

/// Runs one experiment as a command-line program: the seed comes from the
/// first CLI argument if present, else the `MCS_SEED` environment variable,
/// else [`DEFAULT_SEED`]; the rendered report goes to stdout.
pub fn run_cli(experiment: &dyn Experiment) {
    let seed = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("MCS_SEED").ok())
        .map(|s| {
            s.parse::<u64>().unwrap_or_else(|_| {
                eprintln!("invalid seed {s:?}: expected a u64");
                std::process::exit(2);
            })
        })
        .unwrap_or(DEFAULT_SEED);
    print!("{}", experiment.run(seed).render());
}

/// Prints an aligned table: a header row and data rows of equal arity.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (w, c) in widths.iter().zip(cells) {
            s.push_str(&format!("{c:>w$}  ", w = w));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| (*h).to_owned()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// A standard 32-machine commodity cluster.
pub fn standard_cluster() -> Cluster {
    Cluster::homogeneous(
        ClusterId(0),
        "bench",
        MachineSpec::commodity("std-8", 8.0, 32.0),
        32,
    )
}

/// A heterogeneous cluster: commodity plus GPU machines (C4).
pub fn mixed_cluster() -> Cluster {
    let mut c = Cluster::new(ClusterId(0), "mixed");
    for _ in 0..24 {
        c.add_machine(MachineSpec::commodity("std-8", 8.0, 32.0));
    }
    for _ in 0..8 {
        c.add_machine(MachineSpec::gpu("gpu-8", 8.0, 64.0, 2.0));
    }
    c
}

/// A day of bursty batch jobs at moderate load.
pub fn batch_day(seed: u64, max_jobs: usize) -> Vec<Job> {
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.08,
        cpus: mcs::simcore::dist::Dist::LogNormal { mu: 0.5, sigma: 0.7 },
        ..Default::default()
    });
    let mut rng = RngStream::new(seed, "bench-batch");
    generator.generate(SimTime::from_secs(86_400), max_jobs, &mut rng)
}

/// The long horizon used to drain bench workloads.
pub fn drain_horizon() -> SimTime {
    SimTime::from_secs(60 * 86_400)
}

/// Formats a float with the given precision.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}
