//! In-house wall-clock benchmark harness.
//!
//! Replaces the external criterion dependency with the smallest useful
//! surface: each `benches/*.rs` file builds a [`Harness`], registers named
//! benchmarks, and prints a timing table. Statistics are deliberately
//! plain — warmup, then repeated timed samples, reporting min / median /
//! mean — because the benches here guide relative comparisons (ablations,
//! era-to-era deltas), not microarchitectural claims.
//!
//! Environment knobs (unparsable or out-of-range values warn on stderr and
//! fall back to the default):
//! - `MCS_BENCH_SAMPLES` — sample count per benchmark (default 12,
//!   accepted range `1..=10_000`)
//! - `MCS_BENCH_WARMUP_MS` — minimum warmup time in ms (default 200,
//!   accepted range `0..=10_000`)

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The largest sample count / warmup milliseconds the env knobs accept;
/// anything bigger is almost certainly a typo (e.g. a duplicated digit) and
/// would hang a CI smoke run for hours.
const ENV_KNOB_MAX: u64 = 10_000;

/// Timing statistics for one benchmark, in seconds, plus the peak heap
/// growth observed across the timed samples (bytes above the live count at
/// the start of sampling, from [`crate::peakmem::PEAK_ALLOC`]).
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub samples: usize,
    pub min: f64,
    pub median: f64,
    pub mean: f64,
    pub max: f64,
    pub peak_bytes: u64,
}

/// Reads one env knob as a `u64` in `min..=ENV_KNOB_MAX`, warning on stderr
/// and returning `default` for anything unset, unparsable, or out of range.
fn env_knob(var: &str, min: u64, default: u64) -> u64 {
    let Ok(raw) = std::env::var(var) else {
        return default;
    };
    match raw.trim().parse::<u64>() {
        Ok(n) if (min..=ENV_KNOB_MAX).contains(&n) => n,
        _ => {
            eprintln!(
                "mcs-bench: ignoring {var}={raw:?} \
                 (want an integer in {min}..={ENV_KNOB_MAX}); using {default}"
            );
            default
        }
    }
}

fn samples_per_bench() -> usize {
    env_knob("MCS_BENCH_SAMPLES", 1, 12) as usize
}

fn warmup_budget() -> Duration {
    Duration::from_millis(env_knob("MCS_BENCH_WARMUP_MS", 0, 200))
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the hot path.
pub struct Bencher {
    samples: Vec<f64>,
    target_samples: usize,
    warmup: Duration,
    peak_bytes: u64,
}

impl Bencher {
    /// Warms `f` up, then times `target_samples` calls of it. The return
    /// value is routed through [`black_box`] so the work is not optimised
    /// away. Peak heap growth is measured across the timed samples (warmup
    /// excluded, so one-time setup allocations don't pollute the number).
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let warmup_start = Instant::now();
        let mut warmed = 0u32;
        while warmed < 1 || warmup_start.elapsed() < self.warmup {
            black_box(f());
            warmed += 1;
            if warmed >= 1_000 {
                break;
            }
        }
        let baseline = crate::peakmem::PEAK_ALLOC.reset_peak();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed().as_secs_f64());
        }
        self.peak_bytes = crate::peakmem::PEAK_ALLOC.peak_bytes().saturating_sub(baseline);
    }
}

/// A named group of benchmarks printed as one table.
pub struct Harness {
    group: String,
    results: Vec<Stats>,
}

impl Harness {
    pub fn new(group: &str) -> Self {
        Harness { group: group.to_owned(), results: Vec::new() }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: samples_per_bench(),
            warmup: warmup_budget(),
            peak_bytes: 0,
        };
        f(&mut bencher);
        let peak_bytes = bencher.peak_bytes;
        let mut xs = bencher.samples;
        assert!(!xs.is_empty(), "benchmark {name:?} never called Bencher::iter");
        xs.sort_by(|a, b| a.total_cmp(b));
        let stats = Stats {
            name: name.to_owned(),
            samples: xs.len(),
            min: xs[0],
            median: xs[xs.len() / 2],
            mean: xs.iter().sum::<f64>() / xs.len() as f64,
            max: xs[xs.len() - 1],
            peak_bytes,
        };
        eprintln!(
            "  {:<44} min {:>10}  median {:>10}  mean {:>10}  peak {:>10}",
            stats.name,
            format_secs(stats.min),
            format_secs(stats.median),
            format_secs(stats.mean),
            crate::peakmem::format_bytes(stats.peak_bytes),
        );
        self.results.push(stats);
        self
    }

    /// Prints the final table for the group and returns the stats.
    pub fn finish(&self) -> &[Stats] {
        eprintln!(
            "{}: {} benchmark(s), {} sample(s) each",
            self.group,
            self.results.len(),
            samples_per_bench(),
        );
        &self.results
    }
}

/// Renders a duration in seconds with an adaptive unit.
pub fn format_secs(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test owns every env-var mutation: the test harness runs tests on
    // parallel threads, so splitting these into separate #[test] fns would
    // race on the shared process environment.
    #[test]
    fn bench_env_knobs_are_honoured_and_hardened() {
        std::env::set_var("MCS_BENCH_SAMPLES", "3");
        std::env::set_var("MCS_BENCH_WARMUP_MS", "0");
        let mut h = Harness::new("test");
        h.bench("square", |b| b.iter(|| black_box(7u64) * 7));
        let stats = &h.finish()[0];
        assert_eq!(stats.samples, 3);
        assert!(stats.min <= stats.median && stats.median <= stats.max);
        assert_eq!(warmup_budget(), Duration::ZERO);

        // Zero samples would make the median index panic; huge values would
        // hang CI. Both fall back to the default.
        for bad in ["0", "999999", "-3", "twelve", ""] {
            std::env::set_var("MCS_BENCH_SAMPLES", bad);
            assert_eq!(samples_per_bench(), 12, "MCS_BENCH_SAMPLES={bad:?}");
        }
        std::env::set_var("MCS_BENCH_SAMPLES", "10000");
        assert_eq!(samples_per_bench(), 10_000);
        std::env::remove_var("MCS_BENCH_SAMPLES");
        assert_eq!(samples_per_bench(), 12);

        for bad in ["10001", "nope"] {
            std::env::set_var("MCS_BENCH_WARMUP_MS", bad);
            assert_eq!(warmup_budget(), Duration::from_millis(200), "MCS_BENCH_WARMUP_MS={bad:?}");
        }
        std::env::remove_var("MCS_BENCH_WARMUP_MS");
        assert_eq!(warmup_budget(), Duration::from_millis(200));
    }

    #[test]
    fn format_secs_picks_unit() {
        assert!(format_secs(5e-9).ends_with("ns"));
        assert!(format_secs(5e-5).ends_with("µs"));
        assert!(format_secs(5e-3).ends_with("ms"));
        assert!(format_secs(2.0).ends_with(" s"));
    }
}
