//! Figure 4 — the online-gaming functional architecture, measured:
//! Virtual World elasticity, Gaming Analytics (implicit ties + toxicity),
//! and Procedural Content Generation throughput. The PCG `inst/s` column is
//! wall-clock; every other column is seed-deterministic.

use crate::f;
use mcs::prelude::*;
use std::time::Instant;

/// Figure 4 as an [`Experiment`].
pub struct Fig4GamingEcosystem;

impl Experiment for Fig4GamingEcosystem {
    fn name(&self) -> &'static str {
        "fig4_gaming_ecosystem"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report =
            Report::new(self.name(), "Figure 4 — online gaming ecosystem").with_seed(seed);

        // Virtual World: the §6.3 claim — elastic hosting admits the flash
        // crowd at a fraction of the static peak cost.
        let model = PlayerModel {
            base_rate: 0.8,
            amplitude: 0.6,
            period: SimDuration::from_hours(24),
            flash: Some((SimTime::from_secs(6 * 3600), SimDuration::from_hours(2), 3.0)),
            ..Default::default()
        };
        let day = SimTime::from_secs(86_400);
        let mut rows = Vec::new();
        for (name, prov) in [
            ("static-small", ZoneProvisioning::Static { zones: 12 }),
            ("static-peak", ZoneProvisioning::Static { zones: 80 }),
            (
                "elastic",
                ZoneProvisioning::Elastic {
                    min_zones: 4,
                    max_zones: 80,
                    high_watermark: 0.8,
                    low_watermark: 0.3,
                    boot_delay: SimDuration::from_secs(90),
                },
            ),
        ] {
            let out = simulate_world(&model, prov, 100, day, seed);
            rows.push(vec![
                name.into(),
                out.admitted.to_string(),
                out.rejected.to_string(),
                f(out.rejection_rate * 100.0, 2),
                f(out.peak_concurrent, 0),
                f(out.zone_hours, 0),
            ]);
        }
        report = report.with_section(
            Section::new("Virtual World: patch-day flash crowd (x3 for 2 h)").table(
                &["provisioning", "admitted", "rejected", "reject-%", "peak-online", "zone-hours"],
                rows,
            ),
        );

        // Gaming Analytics: implicit social structure and toxicity.
        let mut rows = Vec::new();
        for (label, party_probability) in
            [("strong parties", 0.8), ("weak parties", 0.4), ("matchmaking only", 0.0)]
        {
            let population = PopulationModel { party_probability, ..Default::default() };
            let log = generate_matches(&population, 20_000, seed.wrapping_add(1));
            let graph = implicit_social_graph(&log, population.players, 3);
            let f1 = community_recovery_f1(&log, population.players, 10);
            let (precision, recall) = toxicity_detector(&log, population.players, 0.5);
            rows.push(vec![
                label.into(),
                graph.edge_count().to_string(),
                f(f1, 3),
                f(precision, 2),
                f(recall, 2),
            ]);
        }
        report = report.with_section(
            Section::new("Gaming Analytics: implicit ties from match logs (C5)")
                .table(&["population", "tie-edges", "community-F1", "tox-P", "tox-R"], rows),
        );

        // Procedural Content Generation: verified instances per second.
        let mut rows = Vec::new();
        for scramble in [10usize, 25, 50] {
            let generator = PuzzleGenerator { side: 3, scramble_moves: scramble };
            let mut rng = RngStream::new(seed, "fig4-pcg");
            let t = Instant::now();
            let batch = generator.generate_batch(40, 400_000, &mut rng);
            let secs = t.elapsed().as_secs_f64();
            let mean_difficulty =
                batch.iter().map(|(_, d)| *d as f64).sum::<f64>() / batch.len() as f64;
            rows.push(vec![
                scramble.to_string(),
                batch.len().to_string(),
                f(mean_difficulty, 1),
                f(batch.len() as f64 / secs.max(1e-9), 0),
            ]);
        }
        report = report.with_section(
            Section::new("Procedural Content Generation (POGGI-style)")
                .table(&["scramble-depth", "instances", "mean-difficulty", "inst/s"], rows),
        );

        // Social Meta-Gaming: tournament spectators and stream provisioning.
        let mut rows = Vec::new();
        for rounds in [3u32, 5, 7] {
            let mut rng = RngStream::new(seed, "fig4-meta");
            let t = Tournament::seeded(rounds, &mut rng);
            let out = t.play(50.0, &mut rng);
            let (static_cost, elastic_cost) = stream_capacity_plan(&out, 1_000);
            rows.push(vec![
                format!("{} players", 1u32 << rounds),
                out.matches.len().to_string(),
                out.peak_spectators.to_string(),
                out.total_spectators.to_string(),
                format!("{static_cost} vs {elastic_cost}"),
            ]);
        }
        report.with_section(
            Section::new("Social Meta-Gaming: tournament streaming")
                .table(
                    &["bracket", "matches", "peak-viewers", "total-viewers", "server-rounds s/e"],
                    rows,
                )
                .line(
                    "shape check: elastic hosting admits everyone at far fewer zone-hours than the\n\
                     static peak; social signal strength controls community recovery; deeper scrambles\n\
                     yield harder (but always solvable) content.",
                ),
        )
    }
}
