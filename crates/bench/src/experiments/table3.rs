//! Table 3 — the systems research challenges C1–C10, one measured scenario
//! per challenge, reporting the improvement MCS machinery delivers over a
//! non-MCS baseline.

use crate::{batch_day, f, standard_cluster};
use mcs::prelude::*;

/// Table 3 as an [`Experiment`].
pub struct Table3Challenges;

fn bag(id: u64, submit: u64, demand: f64, cores: f64, accel: f64) -> Job {
    let req = mcs::infra::resource::ResourceVector::new(cores, cores * 2.0)
        .with_accelerators(accel);
    Job {
        id: JobId(id),
        user: UserId((id % 4) as u32),
        kind: JobKind::BagOfTasks,
        submit: SimTime::from_secs(submit),
        tasks: vec![Task::independent(TaskId(id), JobId(id), demand, req)],
    }
}

impl Experiment for Table3Challenges {
    fn name(&self) -> &'static str {
        "table3_challenges"
    }

    fn run(&self, seed: u64) -> Report {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let horizon = SimTime::from_secs(60 * 86_400);

        // C1: ecosystem-wide view — the full stack completes a mixed day.
        {
            let jobs = batch_day(seed.wrapping_add(1), 1_500);
            let n: usize = jobs.iter().map(|j| j.tasks.len()).sum();
            let out = ClusterScheduler::new(standard_cluster(), SchedulerConfig::default(), seed)
                .run(jobs, horizon);
            rows.push(vec![
                "C1 ecosystems".into(),
                "full-stack day: tasks completed".into(),
                format!("{}/{}", out.completions.len(), n),
                format!("util {:.0}%", out.mean_utilization * 100.0),
            ]);
        }

        // C2: software-defined — lease plan vs static hardware.
        {
            let jobs = batch_day(seed.wrapping_add(2), 800);
            let mut policy = BacklogDriven { drain_target_secs: 1800.0 };
            let plan = plan_provisioning(
                &jobs, 8.0, 2, 32, SimDuration::from_mins(15), SimTime::from_secs(86_400), &mut policy,
            );
            rows.push(vec![
                "C2 software-defined".into(),
                "machine-hours saved by lease plan".into(),
                f(32.0 * 24.0, 0),
                f(plan.machine_hours, 0),
            ]);
        }

        // C3: fine-grained NFRs — mixed deadline classes through an
        // overload burst; EDF protects the urgent class where FCFS cannot.
        {
            let mut generator = TransactionWorkloadGenerator::new(50.0, 3.0);
            let mut rng = RngStream::new(seed, "t3-c3");
            let mut jobs = generator.generate(SimTime::from_secs(1_800), 200_000, &mut rng);
            for (i, job) in jobs.iter_mut().enumerate() {
                if i % 2 == 1 {
                    job.tasks[0].deadline = Some(SimDuration::from_mins(10));
                }
            }
            let small = || {
                Cluster::homogeneous(ClusterId(0), "c3", MachineSpec::commodity("std-4", 4.0, 16.0), 2)
            };
            let outage = mcs::failure::model::Outage {
                machine: 0,
                fail_at: SimTime::from_secs(600),
                repair_at: SimTime::from_secs(1_000),
            };
            let run = |queue| {
                ClusterScheduler::new(
                    small(),
                    SchedulerConfig { queue, backfill: false, ..Default::default() },
                    seed,
                )
                .with_outages(vec![outage])
                .run(jobs.clone(), horizon)
            };
            let fcfs = run(QueuePolicy::Fcfs);
            let edf = run(QueuePolicy::EarliestDeadline);
            rows.push(vec![
                "C3 NFRs first-class".into(),
                "deadline misses under outage, FCFS vs EDF".into(),
                fcfs.deadline_misses.to_string(),
                edf.deadline_misses.to_string(),
            ]);
        }

        // C4: extreme heterogeneity — half the machines are 2x-speed; a
        // heterogeneity-blind allocator wastes them on nothing.
        {
            let hetero = || {
                let mut c = Cluster::new(ClusterId(0), "c4");
                for _ in 0..8 {
                    c.add_machine(MachineSpec::commodity("slow-8", 8.0, 32.0));
                }
                for _ in 0..8 {
                    let mut spec = MachineSpec::commodity("fast-8", 8.0, 32.0);
                    spec.core_speed = 2.0;
                    c.add_machine(spec);
                }
                c
            };
            let jobs: Vec<Job> = (0..150).map(|i| bag(i, i * 40, 2_400.0, 4.0, 0.0)).collect();
            let run = |allocation| {
                ClusterScheduler::new(
                    hetero(),
                    SchedulerConfig { allocation, ..Default::default() },
                    seed,
                )
                .run(jobs.clone(), horizon)
            };
            let blind = run(AllocationPolicy::FirstFit);
            let aware = run(AllocationPolicy::FastestFirst);
            rows.push(vec![
                "C4 heterogeneity".into(),
                "mean response (s), first-fit vs fastest-first".into(),
                f(blind.mean_response_secs(), 0),
                f(aware.mean_response_secs(), 0),
            ]);
        }

        // C5: socially aware — community recovery with vs without signal.
        {
            let strong = PopulationModel { party_probability: 0.8, ..Default::default() };
            let noise = PopulationModel { party_probability: 0.0, ..Default::default() };
            let f1_strong =
                community_recovery_f1(&generate_matches(&strong, 20_000, seed), strong.players, 10);
            let f1_noise =
                community_recovery_f1(&generate_matches(&noise, 20_000, seed), noise.players, 10);
            rows.push(vec![
                "C5 socially aware".into(),
                "community F1, no-signal vs strong-signal".into(),
                f(f1_noise, 2),
                f(f1_strong, 2),
            ]);
        }

        // C6: adaptation — MAPE-K loop converges a mis-provisioned plant.
        {
            let mut mape = MapeLoop::new(0.4, 0.8);
            let load = 120.0;
            let mut capacity = 20.0f64;
            let mut steps = 0;
            for i in 0..100 {
                let util = load / capacity;
                if (0.4..=0.8).contains(&util) {
                    steps = i;
                    break;
                }
                match mape.observe(util) {
                    Action::ScaleUp(s) => capacity += s as f64 * 20.0,
                    Action::ScaleDown(s) => capacity = (capacity - s as f64 * 20.0).max(20.0),
                    _ => {}
                }
            }
            rows.push(vec![
                "C6 self-awareness".into(),
                "MAPE-K steps to reach target band".into(),
                "∞ (static)".into(),
                steps.to_string(),
            ]);
        }

        // C7: the dual problem — portfolio vs worst fixed policy.
        {
            let jobs = batch_day(seed.wrapping_add(7), 1_000);
            let mut worst: f64 = 0.0;
            for config in default_portfolio() {
                let out =
                    ClusterScheduler::new(standard_cluster(), config, seed).run(jobs.clone(), horizon);
                worst = worst.max(out.mean_response_secs());
            }
            let mut selector =
                PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, seed);
            let portfolio = ClusterScheduler::new(standard_cluster(), SchedulerConfig::default(), seed)
                .run_adaptive(jobs, horizon, &mut selector, SimDuration::from_mins(30));
            rows.push(vec![
                "C7 dual scheduling".into(),
                "mean response (s), worst-fixed vs portfolio".into(),
                f(worst, 0),
                f(portfolio.mean_response_secs(), 0),
            ]);
        }

        // C8: XaaS — cold-start fraction without vs with a warm pool.
        {
            let invs = poisson_invocations("api", 0.1, SimTime::from_secs(4 * 3600), seed);
            let mut none = FaasPlatform::new(KeepAlivePolicy::None, seed);
            none.deploy(FunctionSpec::api_handler("api"));
            let r_none = none.run(invs.clone());
            let mut pool =
                FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(10)), seed);
            pool.deploy(FunctionSpec::api_handler("api"));
            let r_pool = pool.run(invs);
            rows.push(vec![
                "C8 XaaS".into(),
                "FaaS cold-start fraction, no pool vs 10-min keep-alive".into(),
                f(r_none.cold_fraction, 2),
                f(r_pool.cold_fraction, 2),
            ]);
        }

        // C9: navigation — requirements met by selected composition.
        {
            let catalog = Catalog::new()
                .with(
                    "cache-a",
                    "cache",
                    NfrProfile::new().with(NfrKind::LatencyP95, 0.002).with(NfrKind::CostPerHour, 2.0),
                )
                .with(
                    "cache-b",
                    "cache",
                    NfrProfile::new().with(NfrKind::LatencyP95, 0.02).with(NfrKind::CostPerHour, 0.2),
                )
                .with(
                    "db-a",
                    "db",
                    NfrProfile::new().with(NfrKind::LatencyP95, 0.01).with(NfrKind::CostPerHour, 1.0),
                );
            let targets =
                [NfrTarget::new(NfrKind::LatencyP95, 0.02), NfrTarget::new(NfrKind::CostPerHour, 3.5)];
            let sel = navigate(&catalog, &["cache", "db"], &targets);
            rows.push(vec![
                "C9 navigation".into(),
                "pipeline satisfying all NFR targets found".into(),
                "manual".into(),
                sel.is_ok().to_string(),
            ]);
        }

        // C10: federation — offloading vs isolated home cluster.
        {
            let cluster = || {
                Cluster::homogeneous(ClusterId(0), "c10", MachineSpec::commodity("std-8", 8.0, 32.0), 4)
            };
            let jobs: Vec<Job> = (0..80)
                .map(|i| {
                    let mut j = bag(i, i * 20, 3_000.0, 4.0, 0.0);
                    j.user = UserId(0); // everyone's home is cluster 0
                    j
                })
                .collect();
            let mut topology = Topology::new(2);
            topology.connect(
                DatacenterId(0),
                DatacenterId(1),
                Link { latency: SimDuration::from_millis(30), bandwidth_gbps: 10.0 },
            );
            let home = Federation::new(
                vec![cluster(), cluster()],
                vec![DatacenterId(0), DatacenterId(1)],
                topology.clone(),
                SchedulerConfig::default(),
                RoutingPolicy::HomeOnly,
                seed,
            )
            .run(jobs.clone(), horizon);
            let offload = Federation::new(
                vec![cluster(), cluster()],
                vec![DatacenterId(0), DatacenterId(1)],
                topology,
                SchedulerConfig::default(),
                RoutingPolicy::LocalFirstOffload { threshold_secs: 300.0 },
                seed,
            )
            .run(jobs, horizon);
            rows.push(vec![
                "C10 federation".into(),
                "mean response (s), home-only vs offload".into(),
                f(home.mean_response_secs(), 0),
                f(offload.mean_response_secs(), 0),
            ]);
        }

        Report::new(self.name(), "Table 3 — challenge matrix (systems challenges C1–C10)")
            .with_seed(seed)
            .with_section(
                Section::new("")
                    .table(&["challenge", "scenario", "baseline", "mcs"], rows)
                    .line(
                        "shape check: each challenge's MCS mechanism improves on its baseline, in the\n\
                         direction the paper argues.",
                    ),
            )
    }
}
