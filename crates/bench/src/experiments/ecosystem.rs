//! The composed-ecosystem experiment: correlated failures striking an
//! autoscaled FaaS platform while a portfolio-governed batch scheduler
//! shares the same virtual timeline — all five subsystem actors in one
//! engine run, with every report row computed from the shared trace bus.

use crate::f;
use mcs::core::scenario::{Scenario, ScenarioConfig, ScenarioOutcome};
use mcs::prelude::*;
use mcs::simcore::metrics::{summarize_trace, trace_gauge};
use mcs::simcore::par;

/// The composed "ecosystem" run as an [`Experiment`].
pub struct EcosystemComposed;

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig { seed, ..ScenarioConfig::default() }
}

fn run_with(seed: u64, autoscaler: Box<dyn Autoscaler>) -> ScenarioOutcome {
    Scenario::new(config(seed)).with_autoscaler(autoscaler).run()
}

impl Experiment for EcosystemComposed {
    fn name(&self) -> &'static str {
        "ecosystem_composed"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report = Report::new(
            self.name(),
            "Composed ecosystem — failures vs autoscaled FaaS vs portfolio batch scheduling",
        )
        .with_seed(seed);

        let cfg = config(seed);
        let horizon = cfg.horizon;
        let faas_cfg = cfg.faas.clone().expect("default scenario attaches FaaS");
        let out = Scenario::new(cfg.clone()).run();

        // Cross-component event census, straight off the trace bus.
        let rows: Vec<Vec<String>> = out
            .trace
            .counts()
            .into_iter()
            .map(|(component, event, n)| vec![component, event, n.to_string()])
            .collect();
        report = report.with_section(
            Section::new("event census (one shared trace bus, all subsystems)")
                .table(&["component", "event", "count"], rows)
                .line(format!(
                    "engine delivered {} messages across 5 actors in {} h of virtual time",
                    out.events_handled,
                    f(horizon.as_secs_f64() / 3600.0, 1),
                )),
        );

        // FaaS service quality, aggregated from per-invocation trace records.
        let latency = summarize_trace(&out.trace, "faas", "invoke", "latency_secs");
        let capacity = trace_gauge(
            &out.trace,
            "faas",
            "scale",
            "capacity",
            faas_cfg.initial_capacity as f64,
        );
        let mut rows = vec![vec![
            "arrivals".to_owned(),
            out.arrivals.to_string(),
            "delivered by the workload actor".to_owned(),
        ]];
        rows.push(vec![
            "admitted".to_owned(),
            out.invoked.to_string(),
            "within the autoscaled capacity cap".to_owned(),
        ]);
        rows.push(vec![
            "rejected".to_owned(),
            out.rejected.to_string(),
            f(out.rejected as f64 / (out.arrivals.max(1)) as f64, 3) + " of arrivals",
        ]);
        if let Some(l) = &latency {
            rows.push(vec!["latency p50 (s)".to_owned(), f(l.p50, 3), "from trace".to_owned()]);
            rows.push(vec!["latency p95 (s)".to_owned(), f(l.p95, 3), "from trace".to_owned()]);
        }
        rows.push(vec![
            "cold fraction".to_owned(),
            f(out.faas.cold_fraction, 3),
            "warm pool repeatedly killed by failures".to_owned(),
        ]);
        rows.push(vec![
            "mean capacity".to_owned(),
            f(capacity.average_until(horizon), 2),
            format!("started at {}", faas_cfg.initial_capacity),
        ]);
        rows.push(vec![
            "governor decisions".to_owned(),
            out.governor_decisions.to_string(),
            format!("every {} s", faas_cfg.service.scaling_interval.as_secs_f64()),
        ]);
        report = report.with_section(
            Section::new("FaaS under autoscaling (aggregates from the trace bus)")
                .table(&["metric", "value", "note"], rows),
        );

        // Failure propagation: one injector event fans out to two subsystems.
        let rows = vec![
            vec![
                "outages generated".to_owned(),
                out.outages_generated.to_string(),
                "space-correlated model".to_owned(),
            ],
            vec![
                "outages delivered".to_owned(),
                out.outages_delivered.to_string(),
                "before the horizon".to_owned(),
            ],
            vec![
                "rms machine_fail".to_owned(),
                out.trace.count("rms", "machine_fail").to_string(),
                "scheduler saw every failure".to_owned(),
            ],
            vec![
                "faas kill_warm".to_owned(),
                out.trace.count("faas", "kill_warm").to_string(),
                "warm pool hit by the same failures".to_owned(),
            ],
            vec![
                "failure requeues".to_owned(),
                out.schedule.failure_requeues.to_string(),
                "batch tasks restarted".to_owned(),
            ],
            vec![
                "batch completions".to_owned(),
                out.schedule.completions.len().to_string(),
                format!("portfolio-governed, util {}", f(out.schedule.mean_utilization, 3)),
            ],
        ];
        report = report.with_section(
            Section::new("correlated failures fan out across subsystems")
                .table(&["metric", "value", "note"], rows),
        );

        // Autoscaler portfolio sweep over the identical composed scenario,
        // one scaler per fan-out worker (`MCS_PAR_WORKERS` sets the width).
        // Boxed scalers are not `Send`, so each worker rebuilds the portfolio
        // and takes its scaler by index; rows come back in portfolio order
        // whatever the worker count.
        let intervals_per_day =
            (86_400.0 / faas_cfg.service.scaling_interval.as_secs_f64()).round() as usize;
        let portfolio_len = standard_autoscalers(intervals_per_day).len();
        let rows: Vec<Vec<String>> = par::run_indexed(portfolio_len, |i| {
            let scaler = standard_autoscalers(intervals_per_day)
                .into_iter()
                .nth(i)
                .expect("portfolio index in range");
            let name = scaler.name().to_owned();
            let o = run_with(seed, scaler);
            let cap = trace_gauge(&o.trace, "faas", "scale", "capacity", 4.0);
            vec![
                name,
                o.rejected.to_string(),
                f(o.rejected as f64 / (o.arrivals.max(1)) as f64, 3),
                f(cap.average_until(horizon), 2),
                f(o.faas.provider_gb_secs, 0),
                o.governor_decisions.to_string(),
            ]
        });
        report.with_section(
            Section::new("autoscaler portfolio under identical failure pressure")
                .table(
                    &["autoscaler", "rejected", "rej-frac", "mean-cap", "provider-GBs", "decisions"],
                    rows,
                )
                .line(
                    "shape check: every subsystem emits onto one trace bus; failure events\n\
                     count identically at the injector, the scheduler, and the FaaS platform;\n\
                     reactive scalers trade rejections against provisioned capacity.",
                ),
        )
    }
}
