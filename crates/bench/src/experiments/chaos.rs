//! Deterministic chaos campaign over the composed ecosystem (E6): a
//! seed-derived grid of fault schedules replayed against the networked,
//! resilience-on stack, every run checked by the trace-invariant suite,
//! plus a seeded known-violation that is detected and ddmin-shrunk to a
//! minimal JSON reproducer.
//!
//! The paper's robustness claim is ecosystem-level: retries, breakers,
//! restarts, and flow aborts must compose into "nothing is silently lost"
//! under adversarial fault timing, not just under the average-case outage
//! process. This experiment makes the claim adversarial and machine-checked:
//! schedules are explicit (crash / slowdown / gray / partition windows),
//! runs are deterministic, invariants are evaluated over the shared trace
//! bus, and any violation is reduced to the smallest schedule that still
//! trips it — a hand-editable JSON artifact that replays forever.

use crate::f;
use mcs::chaos::campaign::{run_one, shrink_violation};
use mcs::chaos::{builtin_suite, Campaign, FaultSchedule, ScheduledFault};
use mcs::core::scenario::{BigdataConfig, NetworkConfig, ScenarioConfig};
use mcs::prelude::*;
use mcs::simcore::resilience::ResilienceConfig;
use mcs::simcore::rng::RngStream;

/// The chaos campaign as an [`Experiment`].
pub struct ChaosSweep;

/// The campaign target: batch + FaaS + bigdata on the shared fabric with
/// the full resilience portfolio on and a 30 s flow-abort timeout — the
/// configuration whose robustness the invariants certify.
fn campaign_base(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::default()
        .with_resilience(ResilienceConfig::all_on())
        .with_bigdata(BigdataConfig::default());
    cfg.seed = seed;
    cfg.horizon = SimTime::from_secs(2 * 3600);
    cfg.machines = 16;
    cfg.network = Some(NetworkConfig {
        flow_timeout: Some(SimDuration::from_secs(30)),
        ..NetworkConfig::default()
    });
    cfg
}

/// A seed-derived schedule grid: the fault-free control plus `count` random
/// schedules mixing all four fault kinds over the first two-thirds of the
/// horizon (so every window can close and recovery is observable).
fn schedule_grid(seed: u64, machines: usize, horizon_secs: f64, count: usize) -> Vec<FaultSchedule> {
    let mut rng = RngStream::new(seed, "chaos-schedules");
    let mut schedules = vec![FaultSchedule::empty()];
    for _ in 0..count {
        let faults = (0..3 + rng.uniform_usize(3))
            .map(|_| {
                let at = rng.uniform_f64(60.0, horizon_secs * 2.0 / 3.0);
                let duration = rng.uniform_f64(60.0, 600.0);
                let target = rng.uniform_usize(machines) as u32;
                match rng.uniform_usize(4) {
                    0 => ScheduledFault::crash(at, duration, target),
                    1 => ScheduledFault::slowdown(at, duration, target, rng.uniform_f64(2.0, 8.0)),
                    2 => ScheduledFault::gray(at, duration, target, rng.uniform_f64(0.1, 0.8)),
                    _ => ScheduledFault::partition(at, duration, target),
                }
            })
            .collect();
        schedules.push(FaultSchedule::new(faults));
    }
    schedules
}

/// The seeded known-violation target: the same fabric with the flow-abort
/// timeout disabled, so a partition that never heals strands its flows
/// silently — exactly what `flow-conservation` exists to catch.
fn violation_base(seed: u64) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::bare(seed, SimTime::from_secs(4 * 3600), 16)
        .with_bigdata(BigdataConfig::default());
    cfg.network = Some(NetworkConfig { flow_timeout: None, ..NetworkConfig::default() });
    cfg
}

/// Crash noise plus horizon-length partitions across the data nodes: the
/// partitions strand flows, the crashes are irrelevant — shrinking must
/// keep (some of) the former and drop the latter.
fn violation_schedule() -> FaultSchedule {
    let mut faults = vec![
        ScheduledFault::crash(400.0, 120.0, 9),
        ScheduledFault::crash(2_000.0, 120.0, 10),
    ];
    for node in 0..8 {
        faults.push(ScheduledFault::partition(5.0, 4.0 * 3600.0, node));
    }
    FaultSchedule::new(faults)
}

impl Experiment for ChaosSweep {
    fn name(&self) -> &'static str {
        "chaos_sweep"
    }

    fn run(&self, seed: u64) -> Report {
        // ── The campaign grid ───────────────────────────────────────────
        let base = campaign_base(seed);
        let horizon_secs = base.horizon.as_secs_f64();
        let schedules = schedule_grid(seed, base.machines, horizon_secs, 4);
        let campaign = Campaign::new(base, schedules.clone(), vec![seed, seed.wrapping_add(1)]);
        let report = campaign.run().expect("campaign grid is valid by construction");

        let suite = builtin_suite();
        let fired = report.violations_by_invariant();
        let invariant_rows: Vec<Vec<String>> = suite
            .iter()
            .map(|inv| {
                let (cells, total) = fired
                    .iter()
                    .find(|(name, _, _)| *name == inv.name())
                    .map_or((0, 0), |&(_, cells, total)| (cells, total));
                vec![
                    inv.name().to_owned(),
                    format!("{}/{}", report.total_runs() - cells, report.total_runs()),
                    total.to_string(),
                ]
            })
            .collect();

        let run_rows: Vec<Vec<String>> = report
            .runs
            .iter()
            .map(|r| {
                vec![
                    r.schedule_index.to_string(),
                    schedules[r.schedule_index].len().to_string(),
                    r.seed.to_string(),
                    r.violations.len().to_string(),
                    r.flows_aborted.to_string(),
                    f(r.stall_secs / 60.0, 1),
                    f(r.worst_flow_wait_secs, 1),
                    f(r.worst_breaker_open_secs, 1),
                ]
            })
            .collect();

        // ── The seeded known violation, detected and shrunk ─────────────
        let bad_base = violation_base(seed);
        let bad_schedule = violation_schedule();
        let bad_run = run_one(&bad_base, &bad_schedule, seed)
            .expect("violation schedule is valid by construction");
        let stranded: Vec<_> = bad_run
            .violations
            .iter()
            .filter(|v| v.invariant == "flow-conservation")
            .collect();
        let minimal = shrink_violation(&bad_base, &bad_schedule, seed, "flow-conservation")
            .expect("violating schedule shrinks");
        let replayed = run_one(&bad_base, &minimal, seed)
            .expect("minimal reproducer is a valid schedule");
        let reproduces = replayed
            .violations
            .iter()
            .any(|v| v.invariant == "flow-conservation");

        Report::new(
            self.name(),
            "Chaos campaign: scripted fault schedules vs the trace-invariant suite, with ddmin-shrunk reproducers",
        )
        .with_seed(seed)
        .with_section(
            Section::new("invariant suite over the campaign grid")
                .table(&["invariant", "runs-clean", "violations"], invariant_rows)
                .line(format!(
                    "{} schedules x 2 seeds on the networked resilient stack \
                     (batch+faas+bigdata, flow abort 30s); {} of {} runs clean",
                    schedules.len(),
                    report.clean_runs(),
                    report.total_runs()
                )),
        )
        .with_section(
            Section::new("per-run recovery statistics")
                .table(
                    &[
                        "schedule",
                        "faults",
                        "seed",
                        "violations",
                        "aborted",
                        "stall-min",
                        "worst-wait-s",
                        "worst-breaker-s",
                    ],
                    run_rows,
                )
                .line(
                    "worst-wait-s is the longest any single transfer waited on the fabric;\n\
                     worst-breaker-s the longest any circuit stayed open before re-closing",
                ),
        )
        .with_section(
            Section::new("seeded violation: stranded flows without abort")
                .table(
                    &["stage", "faults", "flow-conservation violations"],
                    vec![
                        vec![
                            "seeded (timeout off)".to_owned(),
                            bad_schedule.len().to_string(),
                            stranded.len().to_string(),
                        ],
                        vec![
                            "ddmin-shrunk".to_owned(),
                            minimal.len().to_string(),
                            replayed
                                .violations
                                .iter()
                                .filter(|v| v.invariant == "flow-conservation")
                                .count()
                                .to_string(),
                        ],
                    ],
                )
                .line(format!(
                    "reproducer replays to the same violation: {}",
                    if reproduces { "yes" } else { "NO — shrinking is broken" }
                ))
                .line(format!("minimal reproducer JSON: {}", minimal.to_json_string())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs::chaos::{check_all, InvariantCx};
    use mcs::core::scenario::Scenario;

    #[test]
    fn campaign_runs_clean_and_catches_the_seeded_violation_at_seed_42() {
        let report = ChaosSweep.run(42);
        let text = report.render();
        // Every built-in invariant appears and the grid is clean.
        for inv in builtin_suite() {
            assert!(text.contains(inv.name()), "missing invariant row {}", inv.name());
        }
        assert!(text.contains("10 of 10 runs clean"), "campaign not clean:\n{text}");
        // The seeded violation is detected, shrunk, and replays.
        assert!(text.contains("reproducer replays to the same violation: yes"), "{text}");
        assert!(text.contains("minimal reproducer JSON: {\"faults\":["));
    }

    #[test]
    fn chaos_sweep_same_seed_is_byte_identical() {
        assert_eq!(ChaosSweep.run(7).to_json_string(), ChaosSweep.run(7).to_json_string());
    }

    #[test]
    fn invariant_suite_passes_on_the_golden_default_config() {
        // The same gate `chaos_sweep --check-invariants` runs in verify.sh:
        // the legacy default composition must satisfy every monitor.
        let cfg = ScenarioConfig::default();
        let cx = InvariantCx::from_config(&cfg);
        let outcome = Scenario::new(cfg).run();
        let violations = check_all(&outcome.trace, &cx);
        assert!(violations.is_empty(), "default-config violations: {violations:?}");
    }
}
