//! Scale stress: the streaming observability fast path at volumes the
//! full-retention trace cannot hold.
//!
//! Three sections, all derived from simulated quantities (so same-seed
//! reruns are byte-identical and `MCS_PAR_WORKERS` never shows in the
//! output):
//!
//! 1. **Equivalence (1x)** — the same composed scenario run with the
//!    full-retention bus and the streaming bus: every aggregate query
//!    (counts, per-field statistics, time spans) must agree, with the
//!    streaming bus retaining a fraction of the bytes.
//! 2. **Scale ladder** — streaming runs at 1x/4x/10x the arrival volume
//!    (fanned out over `mcs::simcore::par` workers): events grow linearly,
//!    retained bytes stay flat.
//! 3. **Headline** — one streaming run driving 10M+ trace events from 2M+
//!    simulated users (FaaS invocations + game players) through the
//!    composed networked scenario. Wall-clock throughput goes to *stderr*
//!    (it is the one non-deterministic number here).

use crate::f;
use mcs::autoscale::service::ServiceConfig;
use mcs::core::scenario::{
    FaasConfig, GamingConfig, NetworkConfig, ObservabilityConfig, Scenario, ScenarioConfig,
    ScenarioOutcome,
};
use mcs::gaming::world::{PlayerModel, ZoneProvisioning};
use mcs::prelude::*;
use mcs::simcore::par;

/// The streaming-vs-full scale comparison as an [`Experiment`].
pub struct ScaleStress;

/// FaaS arrivals/second at 1x.
const BASE_FAAS_RATE: f64 = 2.0;
/// Player arrivals/second at 1x.
const BASE_PLAYER_RATE: f64 = 0.375;
/// Virtual horizon of every run.
const HORIZON_SECS: u64 = 4 * 3600;
/// Ladder rungs, as multiples of the 1x volume.
const LADDER: [f64; 3] = [1.0, 4.0, 10.0];
/// Headline volume: 30x the arrival rates over a doubled horizon puts
/// ~1.7M FaaS invocations and ~320k players (2M+ simulated users) on the
/// engine, for 10M+ trace events. Volume beyond 30x is added via the
/// horizon, not the rate: rate sets the *concurrency* the flow-level
/// fabric must fair-share (which is super-linear in overlapping flows),
/// horizon adds events at fixed concurrency.
const HEADLINE_FACTOR: f64 = 30.0;
/// Headline horizon multiplier (see [`HEADLINE_FACTOR`]).
const HEADLINE_HORIZON_MULT: u64 = 2;

/// The composed networked scenario at `factor` times the 1x volume.
/// `streaming` picks the trace sink; everything else is identical, which is
/// exactly what makes the equivalence section meaningful.
pub fn scale_config(seed: u64, factor: f64, streaming: bool) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::bare(seed, SimTime::from_secs(HORIZON_SECS), 32)
        .with_faas(FaasConfig {
            arrival_rate: BASE_FAAS_RATE * factor,
            max_arrivals: usize::MAX,
            initial_capacity: 64,
            service: ServiceConfig {
                scaling_interval: SimDuration::from_secs(300),
                provisioning_delay_intervals: 1,
                min_instances: 1,
                max_instances: 512,
                ..ServiceConfig::default()
            },
            ..FaasConfig::default()
        })
        .with_gaming(GamingConfig {
            players: PlayerModel {
                base_rate: BASE_PLAYER_RATE * factor,
                ..PlayerModel::default()
            },
            provisioning: ZoneProvisioning::Elastic {
                min_zones: 2,
                max_zones: 2048,
                high_watermark: 0.8,
                low_watermark: 0.3,
                boot_delay: SimDuration::from_secs(60),
            },
            ..GamingConfig::default()
        })
        .with_network(NetworkConfig::default());
    if streaming {
        cfg = cfg.with_observability(ObservabilityConfig {
            window: Some(SimDuration::from_secs(600)),
            ..ObservabilityConfig::default()
        });
    }
    cfg
}

/// What one run contributes to the tables, all simulated quantities.
struct ScaleRow {
    users: u64,
    recorded: u64,
    retained_bytes: u64,
    invoke_p50_ms: f64,
    invoke_p99_ms: f64,
}

fn measure(out: &ScenarioOutcome) -> ScaleRow {
    let q = |q: f64| -> f64 {
        out.trace.field_quantile("faas", "invoke", "latency_secs", q).unwrap_or(0.0) * 1e3
    };
    ScaleRow {
        users: out.arrivals as u64 + out.gaming_admitted + out.gaming_rejected,
        recorded: out.trace.recorded(),
        retained_bytes: out.trace.approx_retained_bytes(),
        invoke_p50_ms: q(0.5),
        invoke_p99_ms: q(0.99),
    }
}

impl Experiment for ScaleStress {
    fn name(&self) -> &'static str {
        "scale_stress"
    }

    fn run(&self, seed: u64) -> Report {
        // 1. Equivalence: same scenario, both sinks.
        let full = Scenario::new(scale_config(seed, 1.0, false)).run();
        let streamed = Scenario::new(scale_config(seed, 1.0, true)).run();
        let stats = |out: &ScenarioOutcome| {
            out.trace.field_stats("faas", "invoke", "latency_secs").expect("invocations ran")
        };
        let (fs, ss) = (stats(&full), stats(&streamed));
        let eq_row = |metric: &str, a: String, b: String| -> Vec<String> {
            let verdict = if a == b { "yes" } else { "NO" };
            vec![metric.to_owned(), a, b, verdict.to_owned()]
        };
        let equivalence = Section::new("streaming vs full retention, same run (1x)")
            .table(
                &["aggregate", "full", "streaming", "equal"],
                vec![
                    eq_row(
                        "events recorded",
                        full.trace.recorded().to_string(),
                        streamed.trace.recorded().to_string(),
                    ),
                    eq_row(
                        "distinct (component, event) pairs",
                        full.trace.counts().len().to_string(),
                        streamed.trace.counts().len().to_string(),
                    ),
                    eq_row("count(faas, invoke)", fs.count().to_string(), ss.count().to_string()),
                    eq_row(
                        "mean invoke latency (ms)",
                        f(fs.mean() * 1e3, 6),
                        f(ss.mean() * 1e3, 6),
                    ),
                    eq_row(
                        "stddev invoke latency (ms)",
                        f(fs.std_dev() * 1e3, 6),
                        f(ss.std_dev() * 1e3, 6),
                    ),
                ],
            )
            .line(format!(
                "retained bytes: full {} vs streaming {} — the aggregates above are\n\
                 computed by the streaming sink at record() time, after which the\n\
                 events themselves are dropped.",
                full.trace.approx_retained_bytes(),
                streamed.trace.approx_retained_bytes(),
            ));

        // 2. Ladder: linear event growth, flat retained bytes (parallel
        // fan-out; byte-identical at any MCS_PAR_WORKERS).
        let rungs: Vec<(f64, ScaleRow)> = par::run_indexed(LADDER.len(), |i| {
            let factor = LADDER[i];
            (factor, measure(&Scenario::new(scale_config(seed, factor, true)).run()))
        });
        let ladder_rows: Vec<Vec<String>> = rungs
            .iter()
            .map(|(factor, r)| {
                vec![
                    format!("{factor}x"),
                    r.users.to_string(),
                    r.recorded.to_string(),
                    (r.retained_bytes / 1024).to_string(),
                    f(r.invoke_p50_ms, 3),
                    f(r.invoke_p99_ms, 3),
                ]
            })
            .collect();
        let ladder = Section::new("streaming scale ladder")
            .table(
                &["volume", "users", "events", "retained-KiB", "invoke-p50-ms", "invoke-p99-ms"],
                ladder_rows,
            )
            .line(
                "events grow with the workload; retained-KiB is the streaming\n\
                 sink's bounded rollup state and stays flat.",
            );

        // 3. Headline: 10M+ events, 2M+ users, one engine run.
        let mut headline_cfg = scale_config(seed, HEADLINE_FACTOR, true);
        headline_cfg.horizon = SimTime::from_secs(HEADLINE_HORIZON_MULT * HORIZON_SECS);
        let wall = std::time::Instant::now();
        let out = Scenario::new(headline_cfg).run();
        let elapsed = wall.elapsed().as_secs_f64();
        let r = measure(&out);
        eprintln!(
            "scale_stress headline: {} engine events in {:.2}s wall ({:.2}M events/s)",
            out.events_handled,
            elapsed,
            out.events_handled as f64 / elapsed / 1e6,
        );
        let windows = out
            .trace
            .window_counts("workload", "arrival")
            .expect("headline runs the streaming sink with windowing on");
        let headline = Section::new(format!(
            "headline ({HEADLINE_FACTOR}x rate, {HEADLINE_HORIZON_MULT}x horizon)"
        ))
            .table(
                &["users", "events", "retained-KiB", "invoke-p50-ms", "invoke-p99-ms"],
                vec![vec![
                    r.users.to_string(),
                    r.recorded.to_string(),
                    (r.retained_bytes / 1024).to_string(),
                    f(r.invoke_p50_ms, 3),
                    f(r.invoke_p99_ms, 3),
                ]],
            )
            .line(format!(
                "arrival windows (600s): {} windows, peak {} arrivals — load-over-time\n\
                 without retaining a single event; wall-clock throughput is on stderr.",
                windows.len(),
                windows.iter().copied().max().unwrap_or(0),
            ));

        Report::new(
            self.name(),
            "Streaming trace sinks at 10M+ events: aggregate equivalence, flat memory, quantiles from sketches",
        )
        .with_seed(seed)
        .with_section(equivalence)
        .with_section(ladder)
        .with_section(headline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_full_aggregates_at_small_scale() {
        let full = Scenario::new(scale_config(42, 0.25, false)).run();
        let streamed = Scenario::new(scale_config(42, 0.25, true)).run();
        assert_eq!(full.trace.counts(), streamed.trace.counts());
        assert_eq!(
            full.trace.field_stats("faas", "invoke", "latency_secs"),
            streamed.trace.field_stats("faas", "invoke", "latency_secs")
        );
        assert_eq!(
            (full.arrivals, full.invoked, full.events_handled),
            (streamed.arrivals, streamed.invoked, streamed.events_handled)
        );
        assert!(streamed.trace.approx_retained_bytes() < full.trace.approx_retained_bytes());
    }

    #[test]
    fn retained_bytes_stay_flat_as_volume_grows() {
        let small = Scenario::new(scale_config(42, 0.25, true)).run();
        let large = Scenario::new(scale_config(42, 2.5, true)).run();
        assert!(
            large.trace.recorded() > 5 * small.trace.recorded(),
            "10x the arrival volume must record several times the events \
             ({} vs {})",
            large.trace.recorded(),
            small.trace.recorded(),
        );
        let (sb, lb) = (small.trace.approx_retained_bytes(), large.trace.approx_retained_bytes());
        assert!(
            lb < 2 * sb,
            "streaming retention must stay flat: {sb} bytes at 1x vs {lb} at 10x"
        );
    }
}
