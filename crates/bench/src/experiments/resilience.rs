//! The resilience-ablation experiment: the composed ecosystem under
//! space-correlated failures with a mixed fault vocabulary (crashes,
//! slowdowns, gray failures, partitions), run once with no resilience, once
//! per mechanism, and once with everything on. Every report row is computed
//! from the shared trace bus — SLO attainment, goodput, availability, and
//! wasted work all come from the same records the mechanisms emit.

use crate::f;
use mcs::core::scenario::{Scenario, ScenarioConfig, ScenarioOutcome};
use mcs::prelude::*;
use mcs::simcore::par;

/// End-to-end invocation latency budget: an invocation that lands within
/// this many (virtual) seconds counts toward SLO attainment and goodput.
pub(crate) const SLO_SECS: f64 = 8.0;

/// The resilience-ablation run as an [`Experiment`].
pub struct ResilienceAblation;

/// A harsher-than-default composed scenario: short MTBF, a mixed fault
/// vocabulary, a congested service, and a capacity cap low enough that the
/// governor's raw target can exceed it. Identical for every variant — only
/// the resilience mechanisms differ.
fn config(seed: u64, resilience: ResilienceConfig) -> ScenarioConfig {
    ScenarioConfig {
        seed,
        horizon: SimTime::from_secs(4 * 3600),
        machines: 24,
        resilience,
        ..ScenarioConfig::default()
    }
    .with_batch(BatchConfig { jobs: 120, ..BatchConfig::default() })
    .with_faas(FaasConfig {
        arrival_rate: 1.2,
        initial_capacity: 8,
        service: ServiceConfig {
            scaling_interval: SimDuration::from_secs(300),
            provisioning_delay_intervals: 1,
            min_instances: 6,
            max_instances: 12,
            ..ServiceConfig::default()
        },
        congestion: Some(CongestionConfig { knee: 0.8, max_penalty: 2.5 }),
        ..FaasConfig::default()
    })
    .with_failures(FailureConfig {
        // Dense enough that every mechanism gets exercised, sparse enough
        // that the service has healthy stretches for retries to land in.
        mtbf_secs: 3.0 * 3600.0,
        // Service blips are transient (~45 s), unlike machine repairs.
        service_fault_secs: Some(45.0),
        failure_domain: 8,
        kill_fraction: 0.3,
        fault_mix: FaultMix {
            crash: 0.45,
            slowdown: 0.10,
            gray: 0.30,
            partition: 0.15,
            // Hard gray failures: every invocation in the window fails (but
            // still burns its execution time). This keeps the ablation
            // honest — a breaker can only avoid doomed work, never block a
            // would-be success.
            gray_error_rate: 1.0,
            ..FaultMix::crash_only()
        },
        schedule: None,
    })
}

/// The ablation grid: baseline, one variant per mechanism, the recovery trio
/// the acceptance shape names (retries + checkpoint-restart + breaker), and
/// everything on.
pub(crate) fn variants() -> Vec<(&'static str, ResilienceConfig)> {
    let mut all = ResilienceConfig::all_on();
    // Longer-reach retries than the library default: fault windows run for
    // minutes, so the backoff chain must be able to span a window tail.
    all.retry = Some(RetryPolicy {
        backoff: Backoff::DecorrelatedJitter {
            base: SimDuration::from_secs(2),
            cap: SimDuration::from_secs(60),
        },
        max_attempts: 6,
    });
    vec![
        ("baseline", ResilienceConfig::none()),
        (
            "retry",
            ResilienceConfig {
                retry: all.retry,
                retry_bulkhead: all.retry_bulkhead,
                ..ResilienceConfig::none()
            },
        ),
        ("breaker", ResilienceConfig { breaker: all.breaker, ..ResilienceConfig::none() }),
        ("shedder", ResilienceConfig { shedder: all.shedder, ..ResilienceConfig::none() }),
        ("restart", ResilienceConfig { restart: all.restart, ..ResilienceConfig::none() }),
        (
            "recovery-trio",
            ResilienceConfig {
                retry: all.retry,
                retry_bulkhead: all.retry_bulkhead,
                breaker: all.breaker,
                restart: all.restart,
                ..ResilienceConfig::none()
            },
        ),
        ("all-on", all),
    ]
}

/// Everything one ablation row reports, computed from the trace bus alone.
#[derive(Debug, Clone, Copy)]
pub struct AblationMetrics {
    pub arrivals: usize,
    pub ok: usize,
    pub within_slo: usize,
    pub failed: usize,
    pub shed: usize,
    pub retries: usize,
    pub breaker_events: usize,
    pub wasted_core_secs: f64,
    pub batch_finishes: usize,
    pub restores: usize,
    pub horizon_hours: f64,
}

impl AblationMetrics {
    /// Fraction of arrivals served within the latency SLO.
    pub fn slo_attainment(&self) -> f64 {
        self.within_slo as f64 / self.arrivals.max(1) as f64
    }

    /// Within-SLO completions per virtual hour.
    pub fn goodput_per_hour(&self) -> f64 {
        self.within_slo as f64 / self.horizon_hours
    }

    /// Fraction of arrivals that received *any* successful response.
    pub fn availability(&self) -> f64 {
        self.ok as f64 / self.arrivals.max(1) as f64
    }
}

/// Reduces one composed run to its ablation row, straight off the bus.
pub fn measure(out: &ScenarioOutcome, horizon_hours: f64) -> AblationMetrics {
    let invokes = out.trace.select("faas", "invoke");
    let within_slo = invokes
        .iter()
        .filter(|e| e.field_f64("latency_secs").is_some_and(|l| l <= SLO_SECS))
        .count();
    let wasted_faas: f64 = out
        .trace
        .select("faas", "invoke_failed")
        .iter()
        .filter_map(|e| e.field_f64("wasted_exec_secs"))
        .sum();
    let wasted_batch: f64 = out
        .trace
        .select("rms", "machine_fail")
        .iter()
        .filter_map(|e| e.field_f64("lost_core_secs"))
        .sum();
    AblationMetrics {
        arrivals: out.trace.count("workload", "arrival"),
        ok: invokes.len(),
        within_slo,
        failed: out.trace.count("faas", "invoke_failed"),
        shed: out.trace.count("faas", "shed"),
        retries: out.trace.count("faas", "retry_scheduled"),
        breaker_events: out.trace.count("faas", "breaker"),
        wasted_core_secs: wasted_faas + wasted_batch,
        batch_finishes: out.trace.count("rms", "task_finish"),
        restores: out.trace.count("rms", "checkpoint_restore"),
        horizon_hours,
    }
}

/// Runs the full ablation grid at one seed, one variant per fan-out worker
/// (see [`par::run_scenarios`]; `MCS_PAR_WORKERS` sets the width). Rows come
/// back in grid order whatever the worker count, and each variant owns its
/// own `Simulation`, RNG streams, and trace bus, so the rows are identical
/// to a serial sweep's.
pub fn run_ablation(seed: u64) -> Vec<(&'static str, AblationMetrics, ScenarioOutcome)> {
    let grid = variants();
    par::run_scenarios(&grid, |(name, resilience)| {
        let cfg = config(seed, *resilience);
        let horizon_hours = cfg.horizon.as_secs_f64() / 3600.0;
        let out = Scenario::new(cfg).run();
        let metrics = measure(&out, horizon_hours);
        (*name, metrics, out)
    })
}

impl Experiment for ResilienceAblation {
    fn name(&self) -> &'static str {
        "resilience_ablation"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report = Report::new(
            self.name(),
            "Resilience ablation — baseline vs each mechanism vs all-on under \
             space-correlated mixed faults",
        )
        .with_seed(seed);

        let rows_data = run_ablation(seed);

        let rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|(name, m, _)| {
                vec![
                    (*name).to_owned(),
                    m.arrivals.to_string(),
                    m.ok.to_string(),
                    m.failed.to_string(),
                    m.shed.to_string(),
                    f(m.slo_attainment(), 3),
                    f(m.goodput_per_hour(), 1),
                    f(m.availability(), 3),
                    f(m.wasted_core_secs, 0),
                    m.batch_finishes.to_string(),
                ]
            })
            .collect();
        report = report.with_section(
            Section::new(format!(
                "ablation grid (SLO = {} s end-to-end; identical faults, congestion, and seed)",
                f(SLO_SECS, 1)
            ))
            .table(
                &[
                    "variant",
                    "arrivals",
                    "ok",
                    "failed",
                    "shed",
                    "slo-att",
                    "goodput/h",
                    "avail",
                    "wasted-core-s",
                    "batch-done",
                ],
                rows,
            )
            .line(
                "baseline absorbs every fault; retry recovers gray/partition windows;\n\
                 the breaker converts repeated failures into fast-fails; the shedder\n\
                 drops load the governor cannot provision for; restart preserves\n\
                 batch progress across crashes.",
            ),
        );

        // Per-variant resilience action census: the mechanisms narrate
        // themselves onto the bus.
        let census_rows: Vec<Vec<String>> = rows_data
            .iter()
            .map(|(name, m, out)| {
                vec![
                    (*name).to_owned(),
                    m.retries.to_string(),
                    m.breaker_events.to_string(),
                    m.shed.to_string(),
                    out.trace.count("rms", "requeue_scheduled").to_string(),
                    m.restores.to_string(),
                    out.trace.count("faas", "fault").to_string(),
                ]
            })
            .collect();
        report = report.with_section(
            Section::new("resilience actions observed on the trace bus")
                .table(
                    &[
                        "variant",
                        "retries",
                        "breaker-transitions",
                        "shed",
                        "requeues-scheduled",
                        "checkpoint-restores",
                        "fault-windows",
                    ],
                    census_rows,
                ),
        );

        let baseline = rows_data[0].1;
        let trio = rows_data
            .iter()
            .find(|(n, _, _)| *n == "recovery-trio")
            .map(|(_, m, _)| *m)
            .expect("recovery-trio variant present");
        report.with_section(Section::new("shape check").line(format!(
            "recovery trio vs baseline: SLO attainment {} -> {}, goodput/h {} -> {};\n\
             the all-on row must dominate every single-mechanism row on >=1 metric\n\
             (asserted by the crate's shape test).",
            f(baseline.slo_attainment(), 3),
            f(trio.slo_attainment(), 3),
            f(baseline.goodput_per_hour(), 1),
            f(trio.goodput_per_hour(), 1),
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_shape_holds_at_default_seed() {
        let rows = run_ablation(crate::DEFAULT_SEED);
        let metric =
            |name: &str| rows.iter().find(|(n, _, _)| *n == name).map(|(_, m, _)| *m).unwrap();
        let baseline = metric("baseline");

        // Retries + checkpoint-restart + circuit breaking strictly improve
        // SLO attainment and goodput over the no-resilience baseline.
        let trio = metric("recovery-trio");
        assert!(
            trio.slo_attainment() > baseline.slo_attainment(),
            "trio SLO attainment {} !> baseline {}",
            trio.slo_attainment(),
            baseline.slo_attainment()
        );
        assert!(
            trio.goodput_per_hour() > baseline.goodput_per_hour(),
            "trio goodput {} !> baseline {}",
            trio.goodput_per_hour(),
            baseline.goodput_per_hour()
        );

        // The all-on row dominates every single-mechanism row on >=1 metric.
        let all = metric("all-on");
        for single in ["retry", "breaker", "shedder", "restart"] {
            let m = metric(single);
            let dominates = all.slo_attainment() > m.slo_attainment()
                || all.goodput_per_hour() > m.goodput_per_hour()
                || all.availability() > m.availability()
                || all.wasted_core_secs < m.wasted_core_secs;
            assert!(dominates, "all-on does not beat {single} on any metric: {all:?} vs {m:?}");
        }
    }

    #[test]
    fn invariant_suite_holds_on_every_ablation_variant() {
        // The chaos monitors must hold on every healthy trace this
        // experiment produces — all mechanisms, all fault kinds, no network.
        use mcs::chaos::{check_all, InvariantCx};
        for (name, resilience) in variants() {
            let cfg = config(crate::DEFAULT_SEED, resilience);
            let cx = InvariantCx::from_config(&cfg);
            let out = Scenario::new(cfg).run();
            let violations = check_all(&out.trace, &cx);
            assert!(violations.is_empty(), "variant {name}: {violations:?}");
        }
    }

    #[test]
    fn every_mechanism_leaves_trace_evidence() {
        let rows = run_ablation(crate::DEFAULT_SEED);
        let get = |name: &str| rows.iter().find(|(n, _, _)| *n == name).unwrap();
        assert!(get("retry").1.retries > 0, "retry variant scheduled no retries");
        assert!(get("breaker").1.breaker_events > 0, "breaker never transitioned");
        assert!(get("restart").1.restores > 0, "restart never restored a checkpoint");
        // The baseline emits none of them.
        let (_, b, out) = get("baseline");
        assert_eq!(b.retries + b.breaker_events + b.shed + b.restores, 0);
        assert_eq!(out.trace.count("rms", "requeue_scheduled"), 0);
    }
}
