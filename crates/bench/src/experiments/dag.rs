//! Portfolio scheduling of DAG workflows vs every fixed policy (E8).
//!
//! A mixed-class workflow stream — chains, fork-join bags, Montage-like
//! mosaics, LIGO-like pipelines — runs on a bare scenario whose only other
//! tenant is the shared fabric, once per scheduling mode: the three fixed
//! policies (HEFT, greedy ready-task, locality-first) and the per-class
//! portfolio that simulates the candidates ahead and runs the winner. The
//! paper's Table 4 claim, applied to workflows: no fixed policy wins every
//! class, so the portfolio's mixed-class mean makespan meets or beats each
//! of them. All metrics come off the shared trace bus via aggregate
//! queries, so the experiment reads identically under full-retention and
//! streaming observability.

use crate::f;
use mcs::core::scenario::{
    DagConfig, DagPolicy, NetworkConfig, ObservabilityConfig, Scenario, ScenarioConfig,
};
use mcs::prelude::*;
use mcs::simcore::par;

/// The workflow-portfolio comparison as an [`Experiment`].
pub struct DagPortfolioExperiment;

/// A bare scenario: the workflow engine and the fabric, nothing else, so
/// the only contention is the workflows' own edge traffic.
fn config(seed: u64, policy: DagPolicy) -> ScenarioConfig {
    ScenarioConfig::bare(seed, SimTime::from_secs(4 * 3600), 32)
        .with_dag(DagConfig { edge_mb: 128.0, policy, ..DagConfig::default() })
        .with_network(NetworkConfig {
            node_bandwidth_mbs: 50.0,
            rack_bandwidth_mbs: 200.0,
            ..NetworkConfig::default()
        })
}

/// Everything one scheduling mode measures — all through aggregate trace
/// queries (`count`, `field_stats`), which answer identically whether the
/// bus retained every event or streamed them into rollups.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PolicyRow {
    jobs_finished: usize,
    tasks_finished: usize,
    mean_makespan_secs: f64,
    transfer_secs: f64,
    stall_secs: f64,
}

fn measure(trace: &TraceBus) -> PolicyRow {
    let jobs = trace.count("dag", "job_finish");
    let makespan = trace.field_stats("dag", "job_finish", "makespan_secs");
    let xfer = trace.field_stats("dag", "edge_xfer", "secs");
    let stall = trace.field_stats("dag", "edge_xfer", "stall_secs");
    let total = |s: Option<OnlineStats>| s.map_or(0.0, |s| s.mean() * s.count() as f64);
    PolicyRow {
        jobs_finished: jobs,
        tasks_finished: trace.count("dag", "task_finish"),
        mean_makespan_secs: makespan.map_or(0.0, |s| s.mean()),
        transfer_secs: total(xfer),
        stall_secs: total(stall),
    }
}

fn run(seed: u64, policy: DagPolicy, streaming: bool) -> PolicyRow {
    let mut cfg = config(seed, policy);
    if streaming {
        cfg = cfg.with_observability(ObservabilityConfig::default());
    }
    measure(&Scenario::new(cfg).run().trace)
}

impl Experiment for DagPortfolioExperiment {
    fn name(&self) -> &'static str {
        "dag_portfolio"
    }

    fn run(&self, seed: u64) -> Report {
        let rows: Vec<(DagPolicy, PolicyRow)> =
            DagPolicy::ALL.iter().map(|&p| (p, run(seed, p, false))).collect();

        let table = |rows: &[(DagPolicy, PolicyRow)]| -> Vec<Vec<String>> {
            rows.iter()
                .map(|(p, r)| {
                    vec![
                        p.name().to_owned(),
                        r.jobs_finished.to_string(),
                        r.tasks_finished.to_string(),
                        f(r.mean_makespan_secs / 60.0, 2),
                        f(r.transfer_secs / 60.0, 2),
                        f(r.stall_secs / 60.0, 2),
                    ]
                })
                .collect()
        };

        let mut report = Report::new(
            self.name(),
            "Per-class portfolio scheduling of mixed DAG workflows vs every fixed policy on the shared fabric",
        )
        .with_seed(seed)
        .with_section(
            Section::new("scheduling modes, same mixed-class stream, same fabric")
                .table(
                    &[
                        "policy",
                        "jobs",
                        "tasks",
                        "mean-makespan-min",
                        "transfer-min",
                        "stall-min",
                    ],
                    table(&rows),
                )
                .line(
                    "no fixed policy wins every workflow class; the portfolio simulates\n\
                     the candidates ahead per class and runs the winner, so its\n\
                     mixed-class mean makespan meets or beats each fixed policy.",
                ),
        );

        // The same run under streaming observability: the bus folds events
        // into rollups instead of retaining them, and the aggregate queries
        // above still answer — bit-identically.
        let streamed: Vec<(DagPolicy, PolicyRow)> =
            DagPolicy::ALL.iter().map(|&p| (p, run(seed, p, true))).collect();
        let agree = rows == streamed;
        report = report.with_section(
            Section::new("streaming observability cross-check")
                .table(
                    &[
                        "policy",
                        "jobs",
                        "tasks",
                        "mean-makespan-min",
                        "transfer-min",
                        "stall-min",
                    ],
                    table(&streamed),
                )
                .line(if agree {
                    "identical to the full-retention table: every metric above is an\n\
                     aggregate query, so bounded-memory tracing loses nothing here."
                } else {
                    "DIVERGED from the full-retention table — aggregate queries should\n\
                     not depend on the sink; investigate."
                }),
        );

        // Seed sweep (parallel fan-out; results independent of
        // MCS_PAR_WORKERS): does portfolio-meets-or-beats survive workload
        // randomness?
        let seeds: Vec<u64> = (0..4).map(|i| seed.wrapping_add(i)).collect();
        let sweep: Vec<Vec<String>> = par::run_seeds(&seeds, |s| {
            let mk = |p: DagPolicy| run(s, p, false).mean_makespan_secs;
            let fixed = [
                mk(DagPolicy::Heft),
                mk(DagPolicy::Greedy),
                mk(DagPolicy::Locality),
            ];
            let portfolio = mk(DagPolicy::Portfolio);
            let best_fixed = fixed.iter().copied().fold(f64::INFINITY, f64::min);
            vec![
                s.to_string(),
                f(fixed[0] / 60.0, 2),
                f(fixed[1] / 60.0, 2),
                f(fixed[2] / 60.0, 2),
                f(portfolio / 60.0, 2),
                f(portfolio / best_fixed.max(1e-9), 3),
            ]
        });
        report = report.with_section(
            Section::new("seed sweep (mean makespan per scheduling mode)")
                .table(
                    &["seed", "heft-min", "greedy-min", "locality-min", "portfolio-min", "portfolio/best-fixed"],
                    sweep,
                )
                .line("portfolio/best-fixed <= 1 means the portfolio met or beat every fixed policy"),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolio_meets_or_beats_every_fixed_policy_at_seed_42() {
        let portfolio = run(42, DagPolicy::Portfolio, false);
        assert!(portfolio.jobs_finished > 0, "portfolio run must finish workflows");
        for fixed in [DagPolicy::Heft, DagPolicy::Greedy, DagPolicy::Locality] {
            let r = run(42, fixed, false);
            assert_eq!(
                r.jobs_finished, portfolio.jobs_finished,
                "{} finished a different job count",
                fixed.name()
            );
            assert!(
                portfolio.mean_makespan_secs <= r.mean_makespan_secs + 1e-9,
                "portfolio {:.1}s must meet or beat {} {:.1}s on mixed-class mean makespan",
                portfolio.mean_makespan_secs,
                fixed.name(),
                r.mean_makespan_secs
            );
        }
    }

    #[test]
    fn streaming_and_full_retention_metrics_agree() {
        for policy in [DagPolicy::Heft, DagPolicy::Portfolio] {
            assert_eq!(run(7, policy, false), run(7, policy, true), "{}", policy.name());
        }
    }

    #[test]
    fn report_carries_every_mode() {
        let report = DagPortfolioExperiment.run(42);
        let text = report.render();
        for name in ["heft", "greedy", "locality", "portfolio"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert!(text.contains("streaming observability cross-check"));
    }
}
