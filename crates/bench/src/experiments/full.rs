//! The full-stack ecosystem experiment: every subsystem the repo models —
//! batch scheduling, autoscaled FaaS, MapReduce/dataflow, graph analytics,
//! the gaming virtual world, and correlated failures — composed on one
//! engine run (the paper's Fig. 1 full stack plus the Fig. 4 gaming
//! world). Every report row is computed from the shared trace bus through
//! the unified [`Subsystem`](mcs::core::subsystem::Subsystem) reporting
//! surface; the cross-tenant section quantifies the interference channel
//! (big-data shuffle windows pressuring graph supersteps and gaming zone
//! capacity) that only exists because the subsystems share a simulation.

use crate::f;
use mcs::core::scenario::{
    BigdataConfig, GamingConfig, GraphConfig, Scenario, ScenarioConfig, ScenarioOutcome,
};
use mcs::core::subsystem::full_stack;
use mcs::prelude::*;
use mcs::simcore::par;

/// The full-stack composed run as an [`Experiment`].
pub struct EcosystemFull;

fn config(seed: u64) -> ScenarioConfig {
    ScenarioConfig { seed, ..ScenarioConfig::default() }
        .with_bigdata(BigdataConfig::default())
        .with_graph(GraphConfig { vertices: 1_000, edges: 4_000, ..GraphConfig::default() })
        .with_gaming(GamingConfig::default())
}

fn run(seed: u64) -> ScenarioOutcome {
    Scenario::new(config(seed)).run()
}

/// Virtual minutes of big-data shuffle pressure, from paired
/// `shuffle_start`/`shuffle_end` records.
fn shuffle_minutes(trace: &TraceBus) -> f64 {
    let starts = trace.select("bigdata", "shuffle_start");
    let ends = trace.select("bigdata", "shuffle_end");
    let open: f64 = starts.iter().map(|e| e.at.as_secs_f64()).sum();
    let close: f64 = ends.iter().map(|e| e.at.as_secs_f64()).sum();
    (close - open).max(0.0) / 60.0
}

/// Graph supersteps that started inside a shuffle-pressure window vs
/// outside, with the straggler count for each population.
fn straggler_split(trace: &TraceBus) -> (usize, usize, usize, usize) {
    // Reconstruct the pressure windows the graph actor saw from its own
    // `pressure` records (windows > 0 means under pressure).
    let mut windows: Vec<(f64, bool)> = trace
        .select("graph", "pressure")
        .iter()
        .map(|e| (e.at.as_secs_f64(), e.field_f64("windows").unwrap_or(0.0) > 0.0))
        .collect();
    windows.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let under_pressure_at = |t: f64| -> bool {
        windows.iter().take_while(|(at, _)| *at <= t).last().is_some_and(|&(_, on)| on)
    };
    let (mut inside, mut inside_straggler, mut outside, mut outside_straggler) = (0, 0, 0, 0);
    for e in trace.select("graph", "superstep_start") {
        let straggler = e.field_f64("slowdown").unwrap_or(1.0) > 1.0;
        if under_pressure_at(e.at.as_secs_f64()) {
            inside += 1;
            inside_straggler += usize::from(straggler);
        } else {
            outside += 1;
            outside_straggler += usize::from(straggler);
        }
    }
    (inside, inside_straggler, outside, outside_straggler)
}

impl Experiment for EcosystemFull {
    fn name(&self) -> &'static str {
        "ecosystem_full"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report = Report::new(
            self.name(),
            "Full-stack ecosystem — batch + FaaS + bigdata + graph + gaming + failures on one engine",
        )
        .with_seed(seed);

        let out = run(seed);

        // One uniform section per subsystem, all through the same
        // `Subsystem::report` path over the same trace bus.
        for subsystem in full_stack() {
            let r = subsystem.report(&out.trace);
            let rows: Vec<Vec<String>> =
                r.metrics.into_iter().map(|(m, v)| vec![m, f(v, 3)]).collect();
            report = report.with_section(
                Section::new(format!("{} (from the shared trace bus)", r.name))
                    .table(&["metric", "value"], rows),
            );
        }

        // Cross-tenant interference: the channel that only exists because
        // all tenants share one simulation and one fleet.
        let (inside, inside_straggler, outside, outside_straggler) = straggler_split(&out.trace);
        let inside_rate = inside_straggler as f64 / (inside.max(1)) as f64;
        let outside_rate = outside_straggler as f64 / (outside.max(1)) as f64;
        report = report.with_section(
            Section::new("cross-tenant interference (bigdata shuffle vs co-tenants)")
                .table(
                    &["metric", "value"],
                    vec![
                        vec![
                            "shuffle pressure minutes".to_owned(),
                            f(shuffle_minutes(&out.trace), 1),
                        ],
                        vec![
                            "graph supersteps under pressure".to_owned(),
                            inside.to_string(),
                        ],
                        vec![
                            "straggler rate under pressure".to_owned(),
                            f(inside_rate, 3),
                        ],
                        vec![
                            "straggler rate outside pressure".to_owned(),
                            f(outside_rate, 3),
                        ],
                        vec![
                            "gaming pressure windows".to_owned(),
                            (out.trace.count("gaming", "pressure") / 2).to_string(),
                        ],
                        vec![
                            "gaming rejections".to_owned(),
                            out.gaming_rejected.to_string(),
                        ],
                    ],
                )
                .line(
                    "supersteps that land inside a shuffle window run slowed; gaming zones\n\
                     lose effective capacity over the same windows — one tenant's shuffle\n\
                     is every tenant's problem.",
                ),
        );

        // Seed sweep (parallel fan-out; results independent of
        // MCS_PAR_WORKERS): does the interference signal survive workload
        // randomness?
        let seeds: Vec<u64> = (0..4).map(|i| seed.wrapping_add(i)).collect();
        let rows: Vec<Vec<String>> = par::run_seeds(&seeds, |s| {
            let o = run(s);
            let (ins, ins_s, outs, outs_s) = straggler_split(&o.trace);
            vec![
                s.to_string(),
                o.bigdata_jobs.to_string(),
                o.graph_queries.to_string(),
                f(ins_s as f64 / ins.max(1) as f64, 3),
                f(outs_s as f64 / outs.max(1) as f64, 3),
                o.gaming_admitted.to_string(),
                o.gaming_disconnected.to_string(),
            ]
        });
        report.with_section(
            Section::new("seed sweep (one composed run per worker)")
                .table(
                    &[
                        "seed",
                        "bd-jobs",
                        "gq",
                        "straggler-in",
                        "straggler-out",
                        "admitted",
                        "disconnected",
                    ],
                    rows,
                )
                .line(format!(
                    "engine delivered {} messages across 8 actors in {} h of virtual time",
                    out.events_handled,
                    f(config(seed).horizon.as_secs_f64() / 3600.0, 1),
                )),
        )
    }
}
