//! Table 1 — "An overview of MCS": the *How?* rows operationalized.
//!
//! Table 1 lists the MCS methodology: design, quantitative measurement,
//! experimentation & simulation, empirical research, instrumentation, and
//! formal models. The testable claim is that the instruments agree: the
//! same M/M/c system studied by (a) formal analysis (Erlang C), (b)
//! discrete-event simulation, and (c) measurement of the simulation's
//! event trace must produce consistent numbers.

use crate::f;
use mcs::prelude::*;

/// Table 1 as an [`Experiment`].
pub struct Table1Methods;

/// Simulates an M/M/c queue on the cluster scheduler: c single-core
/// machines, Poisson arrivals, exponential single-core demands.
fn simulate_mmc(lambda: f64, mu: f64, servers: u32, seed: u64) -> (f64, f64, f64) {
    use mcs::simcore::dist::{Dist, Sample};
    let cluster = Cluster::homogeneous(
        ClusterId(0),
        "mmc",
        MachineSpec::commodity("core", 1.0, 8.0),
        servers,
    );
    let mut rng = RngStream::new(seed, "table1-mmc");
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    let horizon = SimTime::from_secs(200_000);
    let mut id = 0u64;
    loop {
        let gap = Dist::Exponential { rate: lambda }.sample(&mut rng);
        t += SimDuration::from_secs_f64(gap);
        if t >= horizon {
            break;
        }
        let demand = Dist::Exponential { rate: mu }.sample(&mut rng).max(1e-6);
        jobs.push(Job {
            id: JobId(id),
            user: UserId(0),
            kind: JobKind::BagOfTasks,
            submit: t,
            tasks: vec![Task::independent(
                TaskId(id),
                JobId(id),
                demand,
                mcs::infra::resource::ResourceVector::new(1.0, 0.1),
            )],
        });
        id += 1;
    }
    let config = SchedulerConfig { backfill: false, ..Default::default() };
    let mut sched = ClusterScheduler::new(cluster, config, seed);
    let out = sched.run(jobs, SimTime::from_secs(10_000_000));
    let mean_wait: f64 = out
        .completions
        .iter()
        .map(|c| c.wait_time().as_secs_f64())
        .sum::<f64>()
        / out.completions.len().max(1) as f64;
    let waited = out
        .completions
        .iter()
        .filter(|c| c.wait_time().as_secs_f64() > 1e-9)
        .count() as f64
        / out.completions.len().max(1) as f64;
    (out.mean_utilization, waited, mean_wait)
}

impl Experiment for Table1Methods {
    fn name(&self) -> &'static str {
        "table1_methods"
    }

    fn run(&self, seed: u64) -> Report {
        let mu = 0.1; // mean service 10 s
        let mut rows = Vec::new();
        for (lambda, servers) in [(0.5, 8u32), (0.7, 8), (1.5, 20), (0.05, 1)] {
            let model = mmc(lambda, mu, servers).expect("stable configuration");
            let (sim_util, sim_wait_prob, sim_mean_wait) = simulate_mmc(lambda, mu, servers, seed);
            rows.push(vec![
                format!("λ={lambda}, c={servers}"),
                f(model.utilization, 3),
                f(sim_util, 3),
                f(model.wait_probability, 3),
                f(sim_wait_prob, 3),
                f(model.mean_wait_secs, 2),
                f(sim_mean_wait, 2),
            ]);
        }

        // Little's Law closes the triangle: measurement-side L = λW.
        let (util, _, wq) = simulate_mmc(0.7, mu, 8, seed.wrapping_add(1));
        let w = wq + 1.0 / mu;

        Report::new(self.name(), "Table 1 — methodology triangle: model vs simulation vs measurement")
            .with_seed(seed)
            .with_section(
                Section::new("")
                    .table(
                        &["system", "ρ model", "ρ sim", "P(wait) model", "P(wait) sim", "Wq model", "Wq sim"],
                        rows,
                    )
                    .line(format!(
                        "Little's Law check (λ=0.7): measured W = {:.2}s ⇒ L = λW = {:.2} jobs in system (ρ = {:.3}).",
                        w,
                        littles_law(0.7, w),
                        util,
                    ))
                    .line(
                        "shape check: the three instruments of Table 1's 'How?' rows agree to within\n\
                         sampling error — the precondition for using simulation as an MCS instrument (C15).",
                    ),
            )
    }
}
