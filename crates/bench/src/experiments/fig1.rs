//! Figure 1 — the big-data ecosystem: four layers, and the MapReduce vs
//! Pregel sub-ecosystem crossover.
//!
//! The paper's Figure 1 is a reference architecture; the quantitative claim
//! behind it is that applications "use components across the full stack of
//! layers" and that the right sub-ecosystem depends on the workload. This
//! experiment (i) breaks one analytics job into per-layer time, and (ii)
//! sweeps PageRank iteration counts to find where Pregel overtakes
//! iterated MapReduce. Stage times are wall-clock, so the `ms` and seconds
//! columns vary between runs; everything else is seed-deterministic.

use crate::f;
use mcs::prelude::*;

/// Figure 1 as an [`Experiment`].
pub struct Fig1BigdataEcosystem;

impl Experiment for Fig1BigdataEcosystem {
    fn name(&self) -> &'static str {
        "fig1_bigdata_ecosystem"
    }

    fn run(&self, seed: u64) -> Report {
        let mut rng = RngStream::new(seed, "fig1");
        let graph = rmat(13, 12, (0.57, 0.19, 0.19), &mut rng);
        let mut store = BlockStore::new(8, 4, 3, 1);
        let file = store.put("edges", graph.edge_count() * 8, 64 << 20).clone();
        let mut report = Report::new(self.name(), "Figure 1 — big-data ecosystem stack")
            .with_seed(seed)
            .with_section(Section::new("").line(format!(
                "dataset: R-MAT scale 13, {} vertices, {} edges",
                graph.vertex_count(),
                graph.edge_count()
            )));

        // (i) Layer breakdown: a dataflow program through HLL -> MR -> storage.
        let records: Vec<Record> = (0..200_000)
            .map(|i| Record::new(&format!("k{}", i % 512), (i % 1000) as f64))
            .collect();
        let plan = Plan::new()
            .then(Op::FilterMin { min: 100.0 })
            .then(Op::Scale { factor: 0.001 })
            .then(Op::GroupSum);
        let explain = plan.explain();
        let engine = MapReduceEngine { threads: 4, combine: true };
        let (out, stages) = execute(&plan, records, &engine);
        let rows: Vec<Vec<String>> = stages
            .iter()
            .map(|s| {
                vec![
                    s.op.clone(),
                    if s.shuffled { "map+shuffle+reduce" } else { "map-only" }.into(),
                    s.input_records.to_string(),
                    s.output_records.to_string(),
                    f(s.secs * 1e3, 2),
                ]
            })
            .collect();
        report = report.with_section(
            Section::new("per-layer breakdown of one HLL analytics plan")
                .line(explain)
                .table(&["stage", "lowering", "in", "out", "ms"], rows)
                .line(format!("final groups: {}", out.len())),
        );

        // (ii) The sub-ecosystem crossover: PageRank iterations.
        let mut rows = Vec::new();
        for iters in [1usize, 2, 5, 10, 20] {
            let (_, t_mr) = pagerank_mapreduce(
                &store,
                &file,
                &graph,
                iters,
                &MapReduceEngine { threads: 4, combine: false },
            );
            let (_, t_pregel) =
                pagerank_pregel(&store, &file, &graph, iters, &BspEngine::parallel(4));
            let winner =
                if t_mr.total_secs() < t_pregel.total_secs() { "mapreduce" } else { "pregel" };
            rows.push(vec![
                iters.to_string(),
                f(t_mr.storage_secs, 2),
                f(t_mr.compute_secs, 2),
                f(t_mr.total_secs(), 2),
                f(t_pregel.storage_secs, 2),
                f(t_pregel.compute_secs, 2),
                f(t_pregel.total_secs(), 2),
                winner.into(),
            ]);
        }
        let mut crossover = Section::new(
            "MapReduce vs Pregel sub-ecosystems (PageRank, total stack seconds)",
        )
        .table(
            &["iters", "mr-io", "mr-cpu", "mr-total", "pregel-io", "pregel-cpu", "pregel-total", "winner"],
            rows,
        );

        // One-shot aggregation stays MapReduce territory.
        let (_, hist) = degree_histogram_mapreduce(
            &store,
            &file,
            &graph,
            &MapReduceEngine { threads: 4, combine: true },
        );
        crossover = crossover
            .line(format!(
                "one-shot degree histogram on MapReduce: {:.2}s total ({} round)",
                hist.total_secs(),
                hist.rounds
            ))
            .line(
                "shape check: Pregel pays storage once; MapReduce pays it per iteration, so the\n\
                 crossover arrives within a few iterations — the Figure 1 sub-ecosystem story.",
            );
        report.with_section(crossover)
    }
}
