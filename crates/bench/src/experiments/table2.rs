//! Table 2 — the ten core principles of MCS, each systems principle backed
//! by a measurement (P1–P5), and the peopleware/methodology principles
//! (P6–P10) demonstrated by the platform's own properties.

use crate::{batch_day, f};
use mcs::prelude::*;

/// Table 2 as an [`Experiment`].
pub struct Table2Principles;

impl Experiment for Table2Principles {
    fn name(&self) -> &'static str {
        "table2_principles"
    }

    fn run(&self, seed: u64) -> Report {
        let mut rows: Vec<Vec<String>> = Vec::new();

        // P1: ecosystems beat isolated systems — federation with offloading
        // vs isolated overloaded home cluster.
        {
            let cluster = || {
                Cluster::homogeneous(ClusterId(0), "p1", MachineSpec::commodity("std-8", 8.0, 32.0), 4)
            };
            let jobs: Vec<Job> = (0..60)
                .map(|i| Job {
                    id: JobId(i),
                    user: UserId(0),
                    kind: JobKind::BagOfTasks,
                    submit: SimTime::from_secs(i * 30),
                    tasks: vec![Task::independent(
                        TaskId(i),
                        JobId(i),
                        2_000.0,
                        mcs::infra::resource::ResourceVector::new(4.0, 8.0),
                    )],
                })
                .collect();
            let mut topology = Topology::new(2);
            topology.connect(
                DatacenterId(0),
                DatacenterId(1),
                Link { latency: SimDuration::from_millis(20), bandwidth_gbps: 10.0 },
            );
            let horizon = SimTime::from_secs(90 * 86_400);
            let isolated = Federation::new(
                vec![cluster(), cluster()],
                vec![DatacenterId(0), DatacenterId(1)],
                topology.clone(),
                SchedulerConfig::default(),
                RoutingPolicy::HomeOnly,
                seed,
            )
            .run(jobs.clone(), horizon);
            let ecosystem = Federation::new(
                vec![cluster(), cluster()],
                vec![DatacenterId(0), DatacenterId(1)],
                topology,
                SchedulerConfig::default(),
                RoutingPolicy::LocalFirstOffload { threshold_secs: 300.0 },
                seed,
            )
            .run(jobs, horizon);
            rows.push(vec![
                "P1 age of ecosystems".into(),
                "mean response, isolated vs federated (s)".into(),
                f(isolated.mean_response_secs(), 0),
                f(ecosystem.mean_response_secs(), 0),
            ]);
        }

        // P2: software-defined control — an elastic lease plan reshapes the
        // same hardware without touching it.
        {
            let jobs = batch_day(seed, 800);
            let mut policy = BacklogDriven { drain_target_secs: 1_800.0 };
            let plan = plan_provisioning(
                &jobs,
                8.0,
                2,
                32,
                SimDuration::from_mins(15),
                SimTime::from_secs(86_400),
                &mut policy,
            );
            let static_hours = 32.0 * 24.0;
            rows.push(vec![
                "P2 software-defined".into(),
                "machine-hours, static vs software-defined lease".into(),
                f(static_hours, 0),
                f(plan.machine_hours, 0),
            ]);
        }

        // P3: NFRs compose — replication turns 2 nines into 4 without
        // re-measuring.
        {
            let single = NfrProfile::new().with(NfrKind::Availability, 0.99);
            let triple = single.compose_parallel(&single).compose_parallel(&single);
            rows.push(vec![
                "P3 first-class NFRs".into(),
                "availability, single vs composed 3x replica".into(),
                f(single.get(NfrKind::Availability).unwrap(), 6),
                f(triple.get(NfrKind::Availability).unwrap(), 6),
            ]);
        }

        // P4: RM&S + self-awareness — autoscaler vs static minimum on a
        // diurnal service.
        {
            let rate = |t: SimTime| {
                300.0 + 250.0 * (t.as_secs_f64() / 86_400.0 * std::f64::consts::TAU).sin()
            };
            let horizon = SimTime::from_secs(2 * 86_400);
            let mut static_min = StaticAutoscaler(2);
            let baseline = simulate_service(&rate, horizon, ServiceConfig::default(), &mut static_min);
            let mut react = React::default();
            let adaptive = simulate_service(&rate, horizon, ServiceConfig::default(), &mut react);
            rows.push(vec![
                "P4 RM&S + self-awareness".into(),
                "unserved demand fraction, static vs autoscaled".into(),
                f(baseline.unserved_fraction, 3),
                f(adaptive.unserved_fraction, 3),
            ]);
        }

        // P5: super-distribution — recursive providers strengthen the
        // collective guarantee with every nesting level.
        {
            let leaf = |i: u32| {
                SystemNode::new(
                    &format!("s{i}"),
                    &format!("org{i}"),
                    "serve",
                    NfrProfile::new().with(NfrKind::Availability, 0.95),
                )
            };
            let mut eco = Ecosystem::new("l0").with_system(leaf(0));
            let mut depth_rows = Vec::new();
            for d in 1..=3 {
                eco = Ecosystem::new(&format!("l{d}")).with_ecosystem(eco).with_system(leaf(d));
                let a =
                    eco.collective_profile("serve").unwrap().get(NfrKind::Availability).unwrap();
                depth_rows.push((eco.depth(), a));
            }
            let first = depth_rows.first().unwrap();
            let last = depth_rows.last().unwrap();
            rows.push(vec![
                "P5 super-distribution".into(),
                format!("collective availability at depth {} vs {}", first.0, last.0),
                f(first.1, 6),
                f(last.1, 6),
            ]);
        }

        // P6 teachability: navigation explains itself.
        {
            let catalog = Catalog::new()
                .with("a", "store", NfrProfile::new().with(NfrKind::LatencyP95, 0.01))
                .with("b", "store", NfrProfile::new().with(NfrKind::LatencyP95, 0.10));
            let sel = navigate_best_effort(
                &catalog,
                &["store"],
                &[NfrTarget::new(NfrKind::LatencyP95, 0.05)],
            )
            .unwrap();
            rows.push(vec![
                "P6 right to understand".into(),
                "navigation produces a human-readable explanation".into(),
                "n/a".into(),
                format!("{} chars", sel.explanation.len()),
            ]);
        }

        // P7 professional checks: admission control rejects infeasible work
        // instead of silently wedging the ecosystem.
        {
            let cluster =
                Cluster::homogeneous(ClusterId(0), "p7", MachineSpec::commodity("std-4", 4.0, 16.0), 2);
            let job = Job {
                id: JobId(0),
                user: UserId(0),
                kind: JobKind::BagOfTasks,
                submit: SimTime::ZERO,
                tasks: vec![Task::independent(
                    TaskId(0),
                    JobId(0),
                    10.0,
                    mcs::infra::resource::ResourceVector::new(64.0, 1.0),
                )],
            };
            let out = ClusterScheduler::new(cluster, SchedulerConfig::default(), seed)
                .run(vec![job], SimTime::from_secs(1_000));
            rows.push(vec![
                "P7 professional privilege".into(),
                "infeasible requests rejected (not wedged)".into(),
                "0".into(),
                out.rejected.to_string(),
            ]);
        }

        // P8 reproducibility: identical seeds, identical outcomes.
        {
            let run = || {
                let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig::default());
                let mut rng = RngStream::new(seed, "p8");
                generator.generate(SimTime::from_secs(3_600), 50, &mut rng)
            };
            rows.push(vec![
                "P8 science & culture".into(),
                "bit-identical reruns at equal seed".into(),
                "required".into(),
                (run() == run()).to_string(),
            ]);
        }

        // P9 evolution & emergence: the emergence detector fires on
        // dispersion bursts and lock-in changes winners.
        {
            let mut detector = EmergenceDetector::new(32, 3.0);
            for _ in 0..16 {
                detector.observe_dispersion(1.0);
            }
            let fired = detector.observe_dispersion(25.0);
            let techs = vec![
                Technology { name: "better".into(), fitness: 1.2 },
                Technology { name: "worse".into(), fitness: 1.0 },
            ];
            let upset =
                upset_probability(&techs, Regime::NonDarwinian { lock_in: 2.0 }, 2_000, 30, seed);
            rows.push(vec![
                "P9 evolution & emergence".into(),
                "emergence detected / lock-in upset prob".into(),
                fired.to_string(),
                f(upset, 2),
            ]);
        }

        // P10 ethics: operations are transparent — the SLA report names
        // every violated objective.
        {
            let sla = Sla {
                name: "p10".into(),
                slos: vec![Slo {
                    name: "availability".into(),
                    target: NfrTarget::new(NfrKind::Availability, 0.999),
                    penalty: 1.0,
                }],
                penalty_cap: 1.0,
            };
            let report = sla.evaluate(&NfrProfile::new().with(NfrKind::Availability, 0.95));
            rows.push(vec![
                "P10 ethics & transparency".into(),
                "violations reported by name with penalty".into(),
                report.violations.to_string(),
                f(report.penalty, 0),
            ]);
        }

        Report::new(self.name(), "Table 2 — the ten principles, quantified")
            .with_seed(seed)
            .with_section(
                Section::new("")
                    .table(&["principle", "demonstration", "baseline", "mcs"], rows)
                    .line(
                        "shape check: every systems principle shows a measurable gap over its baseline;\n\
                         the peopleware/methodology principles hold as platform properties.",
                    ),
            )
    }
}
