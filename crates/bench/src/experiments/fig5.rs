//! Figure 5 — the FaaS reference architecture, measured: keep-alive
//! economics in the Function Management Layer and composition-depth
//! overhead in the Function Composition Layer.

use crate::f;
use mcs::prelude::*;

/// Figure 5 as an [`Experiment`].
pub struct Fig5FaasRefarch;

fn deploy(platform: &mut FaasPlatform) {
    platform.deploy(FunctionSpec::api_handler("api"));
    platform.deploy(FunctionSpec::data_processor("proc"));
}

impl Experiment for Fig5FaasRefarch {
    fn name(&self) -> &'static str {
        "fig5_faas_refarch"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report =
            Report::new(self.name(), "Figure 5 — FaaS reference architecture").with_seed(seed);

        // Function Management Layer: keep-alive sweep (the paper's isolation
        // vs performance trade-off made concrete as cold-starts vs provider
        // cost).
        let mut rows = Vec::new();
        for window_secs in [0u64, 30, 120, 600, 1800, 7200] {
            let policy = if window_secs == 0 {
                KeepAlivePolicy::None
            } else {
                KeepAlivePolicy::Fixed(SimDuration::from_secs(window_secs))
            };
            let mut platform = FaasPlatform::new(policy, seed);
            deploy(&mut platform);
            let invocations = poisson_invocations("proc", 0.05, SimTime::from_secs(8 * 3600), seed);
            let r = platform.run(invocations);
            rows.push(vec![
                window_secs.to_string(),
                f(r.cold_fraction, 3),
                f(r.latency.as_ref().map(|l| l.p50).unwrap_or(0.0), 2),
                f(r.latency.as_ref().map(|l| l.p95).unwrap_or(0.0), 2),
                f(r.billed_gb_secs, 0),
                f(r.provider_gb_secs, 0),
                r.peak_instances.to_string(),
            ]);
        }
        report = report.with_section(
            Section::new("Function Management Layer: keep-alive sweep (proc @ 0.05/s, 8 h)").table(
                &["keepalive-s", "cold-frac", "p50-s", "p95-s", "billed-GBs", "provider-GBs", "peak-inst"],
                rows,
            ),
        );

        // Burst behaviour: concurrency forces instance fan-out.
        let mut rows = Vec::new();
        for burst in [1usize, 4, 16, 64] {
            let mut platform =
                FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(5)), seed);
            deploy(&mut platform);
            let invocations: Vec<Invocation> = (0..burst)
                .map(|_| Invocation { function: "api".into(), at: SimTime::from_secs(1) })
                .collect();
            let r = platform.run(invocations);
            rows.push(vec![
                burst.to_string(),
                r.peak_instances.to_string(),
                f(r.cold_fraction, 2),
            ]);
        }
        report = report.with_section(
            Section::new("burst fan-out (N simultaneous invocations)")
                .table(&["burst", "peak-instances", "cold-frac"], rows),
        );

        // Function Composition Layer: overhead vs workflow depth.
        let mut rows = Vec::new();
        for depth in [1usize, 2, 4, 8, 16] {
            let mut platform =
                FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(10)), seed);
            deploy(&mut platform);
            let names: Vec<&str> = std::iter::repeat_n("api", depth).collect();
            let workflow =
                Composition { step_overhead_secs: 0.015, ..Composition::chain("wf", &names) };
            // Warm it, then measure.
            let _ = execute_composition(&mut platform, &workflow, SimTime::ZERO);
            let warm = execute_composition(&mut platform, &workflow, SimTime::from_secs(60));
            rows.push(vec![
                depth.to_string(),
                f(warm.latency_secs, 3),
                f(warm.exec_secs, 3),
                f(warm.overhead_secs, 3),
                f(100.0 * warm.overhead_secs / warm.latency_secs.max(1e-12), 1),
            ]);
        }
        report.with_section(
            Section::new("Function Composition Layer: latency vs depth (warm)")
                .table(&["depth", "latency-s", "exec-s", "overhead-s", "overhead-%"], rows)
                .line(
                    "shape check: longer keep-alive trades provider GB-s for cold-start fraction;\n\
                     bursts fan out instances 1:1; composition overhead grows linearly with depth.",
                ),
        )
    }
}
