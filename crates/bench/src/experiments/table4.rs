//! Table 4 — the six use-case domains of §6, one measured scenario each,
//! reporting the domain's headline metric, a cost proxy, and SLO
//! attainment. The §6.6 graph-suite row reports wall-clock runtimes; all
//! other rows are seed-deterministic.

use crate::{batch_day, standard_cluster};
use mcs::prelude::*;

/// Table 4 as an [`Experiment`].
pub struct Table4UseCases;

impl Experiment for Table4UseCases {
    fn name(&self) -> &'static str {
        "table4_use_cases"
    }

    fn run(&self, seed: u64) -> Report {
        let mut rows: Vec<Vec<String>> = Vec::new();
        let horizon = SimTime::from_secs(60 * 86_400);

        // §6.1 Datacenter management (endogenous).
        {
            let jobs = batch_day(seed.wrapping_add(1), 1_200);
            let out = ClusterScheduler::new(standard_cluster(), SchedulerConfig::default(), seed)
                .run(jobs, horizon);
            let spec = MachineSpec::commodity("std-8", 8.0, 32.0);
            let kwh = 32.0 * spec.power.watts(out.mean_utilization) * 24.0 / 1000.0;
            rows.push(vec![
                "§6.1 datacenter".into(),
                format!("mean slowdown {:.2}", out.mean_slowdown()),
                format!("{kwh:.0} kWh/day"),
                format!("{:.1}% util", out.mean_utilization * 100.0),
            ]);
        }

        // §6.2 e-science workflows (exogenous).
        {
            let mut generator = WorkflowWorkloadGenerator::new(WorkflowWorkloadConfig {
                arrival_rate: 0.003,
                width: 10,
                ..Default::default()
            });
            let mut rng = RngStream::new(seed, "t4-escience");
            let wfs = generator.generate(SimTime::from_secs(86_400), 60, &mut rng);
            let cp: f64 =
                wfs.iter().map(|w| w.critical_path_seconds()).sum::<f64>() / wfs.len() as f64;
            let jobs: Vec<Job> = wfs.into_iter().map(Workflow::into_job).collect();
            let out = ClusterScheduler::new(standard_cluster(), SchedulerConfig::default(), seed)
                .run(jobs, horizon);
            rows.push(vec![
                "§6.2 e-science".into(),
                format!("mean response {:.0}s", out.mean_response_secs()),
                format!("cp lower-bound {cp:.0}s"),
                format!("{} tasks done", out.completions.len()),
            ]);
        }

        // §6.3 online gaming (exogenous).
        {
            let model = PlayerModel {
                base_rate: 0.8,
                flash: Some((SimTime::from_secs(6 * 3600), SimDuration::from_hours(2), 3.0)),
                ..Default::default()
            };
            let out = simulate_world(
                &model,
                ZoneProvisioning::Elastic {
                    min_zones: 4,
                    max_zones: 80,
                    high_watermark: 0.8,
                    low_watermark: 0.3,
                    boot_delay: SimDuration::from_secs(90),
                },
                100,
                SimTime::from_secs(86_400),
                seed,
            );
            rows.push(vec![
                "§6.3 gaming".into(),
                format!("reject {:.2}%", out.rejection_rate * 100.0),
                format!("{:.0} zone-hours", out.zone_hours),
                format!("peak {:.0} online", out.peak_concurrent),
            ]);
        }

        // §6.4 banking (exogenous).
        {
            let mut generator = TransactionWorkloadGenerator::new(40.0, 2.0);
            let mut rng = RngStream::new(seed, "t4-banking");
            let jobs = generator.generate(SimTime::from_secs(3_600), 200_000, &mut rng);
            let n = jobs.len();
            let cluster = Cluster::homogeneous(
                ClusterId(0),
                "bank",
                MachineSpec::commodity("std-4", 4.0, 16.0),
                2,
            );
            let config = SchedulerConfig {
                queue: QueuePolicy::EarliestDeadline,
                backfill: false,
                ..Default::default()
            };
            let out = ClusterScheduler::new(cluster, config, seed).run(jobs, horizon);
            rows.push(vec![
                "§6.4 banking".into(),
                format!("{n} txns cleared"),
                format!("mean {:.0}ms", out.mean_response_secs() * 1e3),
                format!("misses {:.3}%", 100.0 * out.deadline_misses as f64 / n as f64),
            ]);
        }

        // §6.5 serverless (endogenous).
        {
            let mut platform =
                FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(10)), seed);
            platform.deploy(FunctionSpec::api_handler("api"));
            let report =
                platform.run(poisson_invocations("api", 0.2, SimTime::from_secs(4 * 3600), seed));
            rows.push(vec![
                "§6.5 serverless".into(),
                format!("cold {:.1}%", report.cold_fraction * 100.0),
                format!("{:.0} GB-s billed", report.billed_gb_secs),
                format!(
                    "p95 {:.0}ms",
                    report.latency.as_ref().map(|l| l.p95).unwrap_or(0.0) * 1e3
                ),
            ]);
        }

        // §6.6 graph processing (endogenous).
        {
            let mut rng = RngStream::new(seed, "t4-graph");
            let g = rmat(13, 12, (0.57, 0.19, 0.19), &mut rng);
            let suite = run_suite(&g, 4);
            let total: f64 = suite.iter().map(|r| r.runtime_secs).sum();
            let best_evps = suite.iter().map(|r| r.evps).fold(0.0, f64::max);
            rows.push(vec![
                "§6.6 graphs".into(),
                format!("6 algorithms in {total:.1}s"),
                format!("peak {best_evps:.2e} EVPS"),
                format!("{}v/{}e", g.vertex_count(), g.edge_count()),
            ]);
        }

        Report::new(self.name(), "Table 4 — use cases (endogenous and exogenous)")
            .with_seed(seed)
            .with_section(
                Section::new("")
                    .table(&["use case", "headline", "cost/scale", "slo/quality"], rows)
                    .line(
                        "shape check: every §6 domain runs end-to-end on the platform with the\n\
                         metrics the paper's discussion calls for.",
                    ),
            )
    }
}
