//! Every figure and table of the paper as an [`Experiment`]
//! (`mcs::experiment::Experiment`): the binaries in `src/bin/` are thin
//! wrappers over these types, and [`all`] is the registry that downstream
//! tooling (tests, sweeps) iterates.

use mcs::experiment::Experiment;

mod chaos;
mod dag;
mod ecosystem;
mod fig1;
mod full;
mod locality;
pub mod resilience;
pub mod scale;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod table1;
mod table2;
mod table3;
mod table4;
mod table5;

pub use chaos::ChaosSweep;
pub use dag::DagPortfolioExperiment;
pub use ecosystem::EcosystemComposed;
pub use full::EcosystemFull;
pub use locality::LocalityContention;
pub use fig1::Fig1BigdataEcosystem;
pub use fig2::Fig2EvolutionTimeline;
pub use fig3::Fig3DatacenterRefarch;
pub use fig4::Fig4GamingEcosystem;
pub use fig5::Fig5FaasRefarch;
pub use resilience::ResilienceAblation;
pub use scale::ScaleStress;
pub use table1::Table1Methods;
pub use table2::Table2Principles;
pub use table3::Table3Challenges;
pub use table4::Table4UseCases;
pub use table5::Table5Paradigms;

/// The full registry: one entry per paper artifact, in paper order.
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Fig1BigdataEcosystem),
        Box::new(Fig2EvolutionTimeline),
        Box::new(Fig3DatacenterRefarch),
        Box::new(Fig4GamingEcosystem),
        Box::new(Fig5FaasRefarch),
        Box::new(Table1Methods),
        Box::new(Table2Principles),
        Box::new(Table3Challenges),
        Box::new(Table4UseCases),
        Box::new(Table5Paradigms),
        Box::new(EcosystemComposed),
        Box::new(EcosystemFull),
        Box::new(ResilienceAblation),
        Box::new(LocalityContention),
        Box::new(ChaosSweep),
        Box::new(ScaleStress),
        Box::new(DagPortfolioExperiment),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<&str> = all().iter().map(|e| e.name()).collect();
        let mut deduped = names.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate experiment name");
        assert!(names.contains(&"table5_paradigms"));
        assert!(names.contains(&"ecosystem_composed"));
        assert!(names.contains(&"ecosystem_full"));
        assert!(names.contains(&"resilience_ablation"));
        assert!(names.contains(&"locality_contention"));
        assert!(names.contains(&"chaos_sweep"));
        assert!(names.contains(&"scale_stress"));
        assert!(names.contains(&"dag_portfolio"));
        assert_eq!(names.len(), 17);
    }
}
