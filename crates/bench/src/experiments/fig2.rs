//! Figure 2 — "Main technologies leading to MCS": evolution dynamics.
//!
//! Figure 2 is a historical timeline; its mechanism, per §3.2, is
//! Darwinian + non-Darwinian technology evolution. This experiment
//! regenerates (i) the Figure 2 inventory timeline through the §3.2
//! evolution mechanisms, and (ii) adoption-share series and lock-in upset
//! probabilities that quantify the non-Darwinian claim.

use crate::f;
use mcs::prelude::*;

/// Figure 2 as an [`Experiment`].
pub struct Fig2EvolutionTimeline;

impl Experiment for Fig2EvolutionTimeline {
    fn name(&self) -> &'static str {
        "fig2_evolution_timeline"
    }

    fn run(&self, seed: u64) -> Report {
        let mut report = Report::new(self.name(), "Figure 2 — technology evolution toward MCS")
            .with_seed(seed);

        // (i) The eras of Figure 2 as inventory evolution.
        let eras: Vec<(&str, Vec<Mechanism>)> = vec![
            (
                "1990s clusters",
                vec![
                    Mechanism::Add { name: "mpi".into() },
                    Mechanism::Add { name: "batch-queue".into() },
                ],
            ),
            (
                "2000s grids",
                vec![
                    Mechanism::Add { name: "grid-middleware".into() },
                    Mechanism::Combine {
                        a: "batch-queue".into(),
                        b: "grid-middleware".into(),
                        into: "meta-scheduler".into(),
                    },
                ],
            ),
            (
                "2010s clouds",
                vec![
                    Mechanism::Add { name: "virtualization".into() },
                    Mechanism::Replace { old: "meta-scheduler".into(), new: "elastic-rm".into() },
                    Mechanism::Add { name: "mapreduce".into() },
                    Mechanism::Add { name: "faas".into() },
                ],
            ),
            (
                "late-2010s MCS",
                vec![
                    Mechanism::Combine {
                        a: "elastic-rm".into(),
                        b: "faas".into(),
                        into: "ecosystem-rm".into(),
                    },
                    Mechanism::Add { name: "self-awareness".into() },
                    Mechanism::Add { name: "nfr-calculus".into() },
                ],
            ),
        ];
        let mut timeline = Section::new("component-inventory timeline (§3.2 mechanisms)");
        let mut inventory: Vec<String> = vec!["unix".to_owned()];
        for (era, mechanisms) in &eras {
            let refs: Vec<&str> = inventory.iter().map(String::as_str).collect();
            inventory = evolve_inventory(&refs, mechanisms);
            timeline = timeline.line(format!("{era:>16}: {inventory:?}"));
        }
        report = report.with_section(timeline);

        // (ii) Adoption dynamics: Darwinian vs lock-in.
        let techs = vec![
            Technology { name: "better".into(), fitness: 1.2 },
            Technology { name: "worse".into(), fitness: 1.0 },
        ];
        let steps = 3_000;
        let mut rows = Vec::new();
        for (label, regime) in [
            ("darwinian", Regime::Darwinian),
            ("lock-in 1.0", Regime::NonDarwinian { lock_in: 1.0 }),
            ("lock-in 2.0", Regime::NonDarwinian { lock_in: 2.0 }),
        ] {
            let mut rng = RngStream::new(seed, &format!("fig2-{label}"));
            let out = simulate_adoption(&techs, regime, steps, &mut rng);
            let series = &out.series[0]; // the "better" technology
            rows.push(vec![
                label.into(),
                f(series[steps / 10 - 1], 3),
                f(series[steps / 2 - 1], 3),
                f(series[steps - 1], 3),
                techs[out.winner].name.clone(),
                f(out.winner_share, 3),
            ]);
        }
        report = report.with_section(
            Section::new("adoption share of the intrinsically-better technology over time").table(
                &["regime", "share@10%", "share@50%", "share@end", "winner", "winner-share"],
                rows,
            ),
        );

        let mut rows = Vec::new();
        for lock_in in [0.0, 0.5, 1.0, 1.5, 2.0, 3.0] {
            let regime = if lock_in == 0.0 {
                Regime::Darwinian
            } else {
                Regime::NonDarwinian { lock_in }
            };
            let p = upset_probability(&techs, regime, 3_000, 60, seed);
            rows.push(vec![f(lock_in, 1), f(p, 3)]);
        }
        report.with_section(
            Section::new("lock-in upset probability (better technology loses), 60 seeds")
                .table(&["lock-in", "P(upset)"], rows)
                .line(
                    "shape check: upsets are rare under Darwinian selection and grow with lock-in —\n\
                     the paper's non-Darwinian evolution (\"soft lock-in elements\") quantified.",
                ),
        )
    }
}
