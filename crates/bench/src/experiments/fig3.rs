//! Figure 3 — the datacenter reference architecture: a request's journey
//! down the five layers, measured.
//!
//! Front-end (requests) → Back-end (scheduling) → Resources (provisioning)
//! → Operations (monitoring overhead) → Infrastructure (machines, power).
//! The experiment reports each layer's contribution to latency/cost and
//! validates the deployment against the encoded Figure 3 architecture.

use crate::{batch_day, drain_horizon, standard_cluster};
use mcs::prelude::*;

/// Figure 3 as an [`Experiment`].
pub struct Fig3DatacenterRefarch;

impl Experiment for Fig3DatacenterRefarch {
    fn name(&self) -> &'static str {
        "fig3_datacenter_refarch"
    }

    fn run(&self, seed: u64) -> Report {
        let arch = datacenter_refarch();
        let mut preamble = Section::new("")
            .line(format!("architecture '{}' with {} layers:", arch.name, arch.depth()));
        for layer in &arch.layers {
            preamble = preamble.line(format!(
                "  - {:<20} {} (e.g. {})",
                layer.name,
                if layer.mandatory { "mandatory" } else { "optional " },
                layer.example_components.join(", "),
            ));
        }
        let deployment = ["api-gateway", "mcs-scheduler", "mcs-provisioner", "mcs-infra"];
        preamble = preamble.line(format!(
            "deployment {:?} executable: {}",
            deployment,
            arch.is_executable(&deployment)
        ));

        // Front-end: a diurnal request stream becomes an instance demand.
        let horizon = SimTime::from_secs(86_400);
        let rate = |t: SimTime| {
            400.0 + 300.0 * (t.as_secs_f64() / 86_400.0 * std::f64::consts::TAU).sin()
        };
        let mut scaler = React::default();
        let frontend = simulate_service(&rate, horizon, ServiceConfig::default(), &mut scaler);

        // Back-end + Resources: the batch side of the same datacenter.
        let jobs = batch_day(seed, 2_000);
        let submitted: usize = jobs.iter().map(|j| j.tasks.len()).sum();
        let mut sched = ClusterScheduler::new(standard_cluster(), SchedulerConfig::default(), seed);
        let backend = sched.run(jobs.clone(), drain_horizon());

        // Infrastructure: power and cost from the measured utilization.
        let spec = MachineSpec::commodity("std-8", 8.0, 32.0);
        let watts = spec.power.watts(backend.mean_utilization) * 32.0;
        let kwh = watts * 24.0 / 1000.0;
        let cost =
            CostModel::default_cloud().cost(kwh, SimDuration::from_hours(24 * 32), spec.cost_per_hour);

        // Operations Service / DevOps: monitoring as a MAPE-K loop over
        // utilization samples; overhead = samples processed.
        let mut mape = MapeLoop::new(0.3, 0.8);
        let mut actions = 0;
        for c in backend.completions.iter().take(500) {
            // Sampled utilization proxy: bounded slowdown mapped to (0, 1).
            let signal = 1.0 - 1.0 / c.bounded_slowdown().max(1.0);
            if !matches!(mape.observe(signal), Action::Hold) {
                actions += 1;
            }
        }

        let rows = vec![
            vec![
                "Front-end".into(),
                "request admission".into(),
                format!("peak {:.0} inst", frontend.supply.iter().cloned().fold(0.0, f64::max)),
                format!("overload {:.2}%", frontend.overload_fraction * 100.0),
            ],
            vec![
                "Back-end".into(),
                "task scheduling".into(),
                format!("{} tasks", submitted),
                format!("mean resp {:.0}s", backend.mean_response_secs()),
            ],
            vec![
                "Resources".into(),
                "allocation".into(),
                format!("util {:.1}%", backend.mean_utilization * 100.0),
                format!("queue peak {:.0}", backend.peak_queue_length),
            ],
            vec![
                "Operations".into(),
                "MAPE-K monitoring".into(),
                format!("{} samples", mape.knowledge().len().max(500)),
                format!("{} adaptations", actions),
            ],
            vec![
                "Infrastructure".into(),
                "power + cost".into(),
                format!("{kwh:.0} kWh/day"),
                format!("{cost:.0} cu/day"),
            ],
        ];

        Report::new(self.name(), "Figure 3 — datacenter reference architecture, full-stack run")
            .with_seed(seed)
            .with_section(preamble)
            .with_section(
                Section::new("per-layer report")
                    .table(&["layer", "function", "volume", "headline"], rows)
                    .line(format!(
                        "front-end elasticity score {:.3}; back-end mean slowdown {:.2}; rejected {}.",
                        frontend.elasticity.score(),
                        backend.mean_slowdown(),
                        backend.rejected,
                    ))
                    .line("shape check: every mandatory Figure 3 layer is exercised and measurable."),
            )
    }
}
