//! Table 5 — comparison of fields/paradigms: the same ecosystem workload
//! operated under cluster-, grid-, cloud-, and MCS-era operating models.
//!
//! The paper's Table 5 places MCS as the successor of its ancestor
//! paradigms; the measurable counterpart is that each era's operating model
//! (static partitions → batch queues with backfilling → elastic leases →
//! elastic + portfolio + admission) improves the response/cost frontier on
//! a modern mixed workload. Every column is simulated time, so reports are
//! byte-identical across same-seed reruns — the determinism test target.

use crate::{batch_day, drain_horizon, f};
use mcs::prelude::*;

const MACHINES: usize = 32;
const CORES: f64 = 8.0;

/// Table 5 as an [`Experiment`].
pub struct Table5Paradigms;

fn cluster() -> Cluster {
    Cluster::homogeneous(
        ClusterId(0),
        "t5",
        MachineSpec::commodity("std-8", CORES, 32.0),
        MACHINES as u32,
    )
}

struct ParadigmResult {
    name: &'static str,
    mean_response: f64,
    machine_hours: f64,
    slowdown: f64,
    unfinished: usize,
}

impl Experiment for Table5Paradigms {
    fn name(&self) -> &'static str {
        "table5_paradigms"
    }

    fn run(&self, seed: u64) -> Report {
        let jobs = batch_day(seed, 1_500);
        let day = SimTime::from_secs(86_400);
        let horizon = drain_horizon();
        let static_hours = MACHINES as f64 * 24.0;
        let mut results: Vec<ParadigmResult> = Vec::new();

        // Cluster era: static machines, plain FCFS, no backfilling.
        {
            let config = SchedulerConfig {
                queue: QueuePolicy::Fcfs,
                allocation: AllocationPolicy::FirstFit,
                backfill: false,
                ..Default::default()
            };
            let out = ClusterScheduler::new(cluster(), config, seed).run(jobs.clone(), horizon);
            results.push(ParadigmResult {
                name: "cluster (1990s)",
                mean_response: out.mean_response_secs(),
                machine_hours: static_hours,
                slowdown: out.mean_slowdown(),
                unfinished: out.unfinished,
            });
        }

        // Grid era: batch queue with EASY backfilling, still static hardware.
        {
            let config = SchedulerConfig {
                queue: QueuePolicy::Fcfs,
                allocation: AllocationPolicy::BestFit,
                backfill: true,
                ..Default::default()
            };
            let out = ClusterScheduler::new(cluster(), config, seed).run(jobs.clone(), horizon);
            results.push(ParadigmResult {
                name: "grid (2000s)",
                mean_response: out.mean_response_secs(),
                machine_hours: static_hours,
                slowdown: out.mean_slowdown(),
                unfinished: out.unfinished,
            });
        }

        // Cloud era: elastic leases (pay for what the backlog needs).
        {
            let mut policy = BacklogDriven { drain_target_secs: 1_200.0 };
            let plan = plan_provisioning(
                &jobs,
                CORES,
                2,
                MACHINES,
                SimDuration::from_mins(15),
                day,
                &mut policy,
            );
            let config = SchedulerConfig { backfill: true, ..Default::default() };
            let out = ClusterScheduler::new(cluster(), config, seed)
                .with_outages(plan.outages.clone())
                .run(jobs.clone(), horizon);
            results.push(ParadigmResult {
                name: "cloud (2010s)",
                mean_response: out.mean_response_secs(),
                machine_hours: plan.machine_hours,
                slowdown: out.mean_slowdown(),
                unfinished: out.unfinished,
            });
        }

        // MCS era: elastic leases + runtime portfolio scheduling + admission.
        {
            let mut policy = BacklogDriven { drain_target_secs: 1_200.0 };
            let plan = plan_provisioning(
                &jobs,
                CORES,
                2,
                MACHINES,
                SimDuration::from_mins(15),
                day,
                &mut policy,
            );
            let mut selector =
                PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, seed);
            let out = ClusterScheduler::new(cluster(), SchedulerConfig::default(), seed)
                .with_outages(plan.outages.clone())
                .run_adaptive(jobs.clone(), horizon, &mut selector, SimDuration::from_mins(30));
            results.push(ParadigmResult {
                name: "MCS (late 2010s)",
                mean_response: out.mean_response_secs(),
                machine_hours: plan.machine_hours,
                slowdown: out.mean_slowdown(),
                unfinished: out.unfinished,
            });
        }

        let rows: Vec<Vec<String>> = results
            .iter()
            .map(|r| {
                vec![
                    r.name.into(),
                    f(r.mean_response, 0),
                    f(r.slowdown, 2),
                    f(r.machine_hours, 0),
                    f(r.mean_response * r.machine_hours / 1e6, 3),
                    r.unfinished.to_string(),
                ]
            })
            .collect();
        Report::new(self.name(), "Table 5 — operating-model comparison on one mixed workload")
            .with_seed(seed)
            .with_section(
                Section::new("")
                    .table(
                        &["paradigm", "mean-resp-s", "slowdown", "machine-h", "resp×cost (norm)", "unfinished"],
                        rows,
                    )
                    .line(
                        "shape check: grid backfilling improves on plain FCFS; cloud elasticity slashes\n\
                         machine-hours at a bounded response cost; MCS recovers response via portfolio\n\
                         scheduling while keeping the elastic cost — the paradigm frontier of Table 5.",
                    ),
            )
    }
}
