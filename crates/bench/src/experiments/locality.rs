//! Locality-aware vs locality-blind batch placement under shuffle
//! contention, on the flow-level network model (`mcs-net`).
//!
//! Six overlapping MapReduce jobs run on a bare scenario whose only other
//! tenant is the shared fabric. With locality-aware map placement almost
//! every block is read node-locally and only the shuffles contend for
//! uplinks; with locality-blind placement the map phases ship most of the
//! input across the fabric, the shuffle flows inherit the congestion, and
//! the makespan stretches. The experiment quantifies the gap — the paper's
//! point that the network layer the programmer never sees sets the
//! performance envelope — with every metric computed from the shared trace
//! bus (`bigdata job_finish` records and `net flow_end` records).

use crate::f;
use mcs::bigdata::locality::MapPhaseConfig;
use mcs::core::scenario::{BigdataConfig, NetworkConfig, Scenario, ScenarioConfig};
use mcs::prelude::*;
use mcs::simcore::par;

/// The placement-under-contention comparison as an [`Experiment`].
pub struct LocalityContention;

/// A bare scenario: the big-data stack and the fabric, nothing else, so the
/// only contention is the contention under study.
fn config(seed: u64, locality_aware: bool) -> ScenarioConfig {
    ScenarioConfig::bare(seed, SimTime::from_secs(4 * 3600), 24)
        .with_bigdata(BigdataConfig {
            jobs: 6,
            stages_per_job: 2,
            submit_interval_secs: 120.0,
            input_mb: 4_096,
            map: MapPhaseConfig { locality_aware, ..MapPhaseConfig::default() },
            ..BigdataConfig::default()
        })
        .with_network(NetworkConfig {
            node_bandwidth_mbs: 25.0,
            rack_bandwidth_mbs: 100.0,
            ..NetworkConfig::default()
        })
}

/// Everything one placement policy measures, all derived from the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PlacementRow {
    jobs_finished: usize,
    makespan_secs: f64,
    flows: usize,
    gib_moved: f64,
    transfer_secs: f64,
    stall_secs: f64,
}

fn measure(trace: &TraceBus) -> PlacementRow {
    let finishes = trace.select("bigdata", "job_finish");
    let makespan_secs =
        finishes.iter().map(|e| e.at.as_secs_f64()).fold(0.0, f64::max);
    let ends = trace.select("net", "flow_end");
    let sum = |key: &str| -> f64 { ends.iter().filter_map(|e| e.field_f64(key)).sum() };
    PlacementRow {
        jobs_finished: finishes.len(),
        makespan_secs,
        flows: ends.len(),
        gib_moved: sum("bytes") / (1024.0 * 1024.0 * 1024.0),
        transfer_secs: sum("secs"),
        stall_secs: sum("stall_secs"),
    }
}

fn run(seed: u64, locality_aware: bool) -> PlacementRow {
    measure(&Scenario::new(config(seed, locality_aware)).run().trace)
}

impl Experiment for LocalityContention {
    fn name(&self) -> &'static str {
        "locality_contention"
    }

    fn run(&self, seed: u64) -> Report {
        let aware = run(seed, true);
        let blind = run(seed, false);

        let row = |name: &str, r: PlacementRow| -> Vec<String> {
            vec![
                name.to_owned(),
                r.jobs_finished.to_string(),
                f(r.makespan_secs / 60.0, 1),
                r.flows.to_string(),
                f(r.gib_moved, 2),
                f(r.transfer_secs / 60.0, 1),
                f(r.stall_secs / 60.0, 1),
            ]
        };

        let mut report = Report::new(
            self.name(),
            "Locality-aware vs locality-blind map placement under shuffle contention on the shared fabric",
        )
        .with_seed(seed)
        .with_section(
            Section::new("placement policies, same fabric, same seed")
                .table(
                    &[
                        "placement",
                        "jobs",
                        "makespan-min",
                        "flows",
                        "GiB-moved",
                        "transfer-min",
                        "stall-min",
                    ],
                    vec![row("locality-aware", aware), row("locality-blind", blind)],
                )
                .line(
                    "blind placement ships most map input across the fabric; the extra\n\
                     flows crowd the same links the shuffles need, so transfers stall\n\
                     and the job makespan stretches — locality is a network property.",
                ),
        );

        // Seed sweep (parallel fan-out; results independent of
        // MCS_PAR_WORKERS): does the aware-beats-blind gap survive workload
        // randomness?
        let seeds: Vec<u64> = (0..4).map(|i| seed.wrapping_add(i)).collect();
        let rows: Vec<Vec<String>> = par::run_seeds(&seeds, |s| {
            let a = run(s, true);
            let b = run(s, false);
            vec![
                s.to_string(),
                f(a.makespan_secs / 60.0, 1),
                f(b.makespan_secs / 60.0, 1),
                f(b.makespan_secs / a.makespan_secs.max(1e-9), 2),
                f(a.stall_secs / 60.0, 1),
                f(b.stall_secs / 60.0, 1),
            ]
        });
        report = report.with_section(
            Section::new("seed sweep (aware vs blind per seed)")
                .table(
                    &[
                        "seed",
                        "aware-min",
                        "blind-min",
                        "blind/aware",
                        "aware-stall-min",
                        "blind-stall-min",
                    ],
                    rows,
                )
                .line("makespans in virtual minutes; blind/aware > 1 means locality won"),
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_aware_beats_blind_under_contention_at_seed_42() {
        let aware = run(42, true);
        let blind = run(42, false);
        assert_eq!(aware.jobs_finished, 6, "aware run must finish all jobs");
        assert!(
            aware.makespan_secs < blind.makespan_secs,
            "aware {:.0}s should beat blind {:.0}s",
            aware.makespan_secs,
            blind.makespan_secs
        );
        assert!(
            aware.stall_secs < blind.stall_secs,
            "aware stall {:.0}s should undercut blind stall {:.0}s",
            aware.stall_secs,
            blind.stall_secs
        );
        assert!(blind.gib_moved > aware.gib_moved, "blind must ship more bytes");
    }

    #[test]
    fn report_carries_both_policies() {
        let report = LocalityContention.run(42);
        let text = report.render();
        assert!(text.contains("locality-aware"));
        assert!(text.contains("locality-blind"));
    }
}
