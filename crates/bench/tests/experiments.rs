//! Facade-level reproducibility (P8): running an [`Experiment`] twice at
//! the same seed must produce byte-identical reports — rendered text and
//! JSON encoding alike. Table 5 is the target because every one of its
//! columns is simulated time (no wall-clock reads anywhere in its path).

use mcs::experiment::{Experiment, Report};
use mcs_bench::experiments::{self, Table1Methods, Table5Paradigms};

#[test]
fn table5_same_seed_is_byte_identical() {
    let a = Table5Paradigms.run(42);
    let b = Table5Paradigms.run(42);
    assert_eq!(a.to_json_string(), b.to_json_string());
    assert_eq!(a.render(), b.render());
}

#[test]
fn table5_different_seeds_differ() {
    let a = Table5Paradigms.run(1);
    let b = Table5Paradigms.run(2);
    assert_ne!(a.to_json_string(), b.to_json_string());
}

#[test]
fn reports_round_trip_through_the_codec() {
    let report = Table1Methods.run(7);
    let json = report.to_json_string();
    let back: Report = mcs::simcore::codec::from_str(&json).expect("report JSON must parse");
    assert_eq!(back.to_json_string(), json);
    assert_eq!(back.seed, 7);
    assert_eq!(back.name, "table1_methods");
}

#[test]
fn every_registered_experiment_reports_its_seed() {
    // Cheap structural check over the whole registry without running the
    // heavy simulations: names are non-empty, stable, and unique.
    let registry = experiments::all();
    assert_eq!(registry.len(), 17);
    for e in &registry {
        assert!(!e.name().is_empty());
        assert!(e.name().is_ascii());
    }
}
