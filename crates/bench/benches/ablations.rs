//! Ablation benches for the design choices called out in DESIGN.md:
//! portfolio vs fixed policy, locality-aware vs blind map scheduling,
//! keep-alive horizon, and correlated vs independent failure analysis.

use mcs::prelude::*;
use mcs_bench::harness::{black_box, Harness};

fn scheduler_jobs() -> Vec<Job> {
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        ..Default::default()
    });
    let mut rng = RngStream::new(1, "ablation-jobs");
    generator.generate(SimTime::from_secs(4 * 3600), 300, &mut rng)
}

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterId(0), "abl", MachineSpec::commodity("std-8", 8.0, 32.0), 16)
}

fn main() {
    let mut h = Harness::new("ablations");

    // Ablation 1: the runtime cost of portfolio scheduling vs a fixed policy.
    let jobs = scheduler_jobs();
    let horizon = SimTime::from_secs(30 * 86_400);
    h.bench("portfolio/fixed_policy", |b| {
        b.iter(|| {
            let mut sched = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 1);
            black_box(sched.run(jobs.clone(), horizon))
        })
    });
    h.bench("portfolio/portfolio_30min_ticks", |b| {
        b.iter(|| {
            let mut sched = ClusterScheduler::new(cluster(), SchedulerConfig::default(), 1);
            let mut selector =
                PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, 1);
            black_box(sched.run_adaptive(
                jobs.clone(),
                horizon,
                &mut selector,
                SimDuration::from_mins(30),
            ))
        })
    });

    // Ablation 2: locality-aware vs blind map-phase scheduling.
    let mut store = BlockStore::new(16, 4, 3, 2);
    let file = store.put("input", 128 * 128, 128).clone();
    for (name, aware) in [("locality/locality_aware", true), ("locality/locality_blind", false)] {
        let config = MapPhaseConfig { locality_aware: aware, ..Default::default() };
        h.bench(name, |b| {
            b.iter(|| {
                let mut rng = RngStream::new(2, "ablation-locality");
                black_box(schedule_map_phase(&store, &file, config, &mut rng))
            })
        });
    }

    // Ablation 3: FaaS keep-alive horizon sweep.
    let invocations = poisson_invocations("api", 0.2, SimTime::from_secs(2 * 3600), 3);
    for window in [0u64, 60, 600, 3_600] {
        h.bench(&format!("keepalive/keepalive_{window}s"), |b| {
            b.iter(|| {
                let policy = if window == 0 {
                    KeepAlivePolicy::None
                } else {
                    KeepAlivePolicy::Fixed(SimDuration::from_secs(window))
                };
                let mut p = FaasPlatform::new(policy, 3);
                p.deploy(FunctionSpec::api_handler("api"));
                black_box(p.run(invocations.clone()))
            })
        });
    }

    // Ablation 4: failure-model families at identical MTBF — generation plus
    // availability analysis.
    let machines = 128usize;
    let fail_horizon = SimTime::from_secs(30 * 86_400);
    let mtbf = 100.0 * 3600.0;
    let independent = IndependentFailures::with_mtbf(mtbf);
    h.bench("failures/independent", |b| {
        b.iter(|| {
            let mut rng = RngStream::new(4, "abl-ind");
            let o = independent.generate(machines, fail_horizon, &mut rng);
            black_box(analyze(&o, machines, fail_horizon))
        })
    });
    let space = SpaceCorrelatedFailures::with_mtbf(mtbf, machines, 16);
    h.bench("failures/space_correlated", |b| {
        b.iter(|| {
            let mut rng = RngStream::new(4, "abl-space");
            let o = space.generate(machines, fail_horizon, &mut rng);
            black_box(analyze(&o, machines, fail_horizon))
        })
    });
    let time = TimeCorrelatedFailures::with_mtbf(mtbf, machines);
    h.bench("failures/time_correlated", |b| {
        b.iter(|| {
            let mut rng = RngStream::new(4, "abl-time");
            let o = time.generate(machines, fail_horizon, &mut rng);
            black_box(analyze(&o, machines, fail_horizon))
        })
    });

    h.finish();
}
