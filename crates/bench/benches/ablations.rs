//! Ablation benches for the design choices called out in DESIGN.md:
//! portfolio vs fixed policy, locality-aware vs blind map scheduling,
//! keep-alive horizon, and correlated vs independent failure analysis.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcs::prelude::*;
use std::hint::black_box;

fn scheduler_jobs() -> Vec<Job> {
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        ..Default::default()
    });
    let mut rng = RngStream::new(1, "ablation-jobs");
    generator.generate(SimTime::from_secs(4 * 3600), 300, &mut rng)
}

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterId(0), "abl", MachineSpec::commodity("std-8", 8.0, 32.0), 16)
}

/// Ablation 1: the runtime cost of portfolio scheduling vs a fixed policy.
fn bench_ablation_portfolio(c: &mut Criterion) {
    let jobs = scheduler_jobs();
    let horizon = SimTime::from_secs(30 * 86_400);
    let mut group = c.benchmark_group("ablation_portfolio");
    group.bench_function("fixed_policy", |b| {
        b.iter_batched(
            || ClusterScheduler::new(cluster(), SchedulerConfig::default(), 1),
            |mut sched| black_box(sched.run(jobs.clone(), horizon)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("portfolio_30min_ticks", |b| {
        b.iter_batched(
            || {
                (
                    ClusterScheduler::new(cluster(), SchedulerConfig::default(), 1),
                    PortfolioSelector::new(default_portfolio(), Objective::MeanResponse, 1),
                )
            },
            |(mut sched, mut selector)| {
                black_box(sched.run_adaptive(
                    jobs.clone(),
                    horizon,
                    &mut selector,
                    SimDuration::from_mins(30),
                ))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation 2: locality-aware vs blind map-phase scheduling.
fn bench_ablation_locality(c: &mut Criterion) {
    let mut store = BlockStore::new(16, 4, 3, 2);
    let file = store.put("input", 128 * 128, 128).clone();
    let mut group = c.benchmark_group("ablation_locality");
    for (name, aware) in [("locality_aware", true), ("locality_blind", false)] {
        group.bench_function(name, |b| {
            let config = MapPhaseConfig { locality_aware: aware, ..Default::default() };
            b.iter_batched(
                || RngStream::new(2, "ablation-locality"),
                |mut rng| black_box(schedule_map_phase(&store, &file, config, &mut rng)),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Ablation 3: FaaS keep-alive horizon sweep.
fn bench_ablation_keepalive(c: &mut Criterion) {
    let invocations = poisson_invocations("api", 0.2, SimTime::from_secs(2 * 3600), 3);
    let mut group = c.benchmark_group("ablation_keepalive");
    for window in [0u64, 60, 600, 3_600] {
        group.bench_function(format!("keepalive_{window}s"), |b| {
            b.iter_batched(
                || {
                    let policy = if window == 0 {
                        KeepAlivePolicy::None
                    } else {
                        KeepAlivePolicy::Fixed(SimDuration::from_secs(window))
                    };
                    let mut p = FaasPlatform::new(policy, 3);
                    p.deploy(FunctionSpec::api_handler("api"));
                    p
                },
                |mut p| black_box(p.run(invocations.clone())),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// Ablation 4: failure-model families at identical MTBF — generation plus
/// availability analysis.
fn bench_ablation_failures(c: &mut Criterion) {
    let machines = 128usize;
    let horizon = SimTime::from_secs(30 * 86_400);
    let mtbf = 100.0 * 3600.0;
    let mut group = c.benchmark_group("ablation_correlated_failures");
    group.bench_function("independent", |b| {
        let model = IndependentFailures::with_mtbf(mtbf);
        b.iter_batched(
            || RngStream::new(4, "abl-ind"),
            |mut rng| {
                let o = model.generate(machines, horizon, &mut rng);
                black_box(analyze(&o, machines, horizon))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("space_correlated", |b| {
        let model = SpaceCorrelatedFailures::with_mtbf(mtbf, machines, 16);
        b.iter_batched(
            || RngStream::new(4, "abl-space"),
            |mut rng| {
                let o = model.generate(machines, horizon, &mut rng);
                black_box(analyze(&o, machines, horizon))
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("time_correlated", |b| {
        let model = TimeCorrelatedFailures::with_mtbf(mtbf, machines);
        b.iter_batched(
            || RngStream::new(4, "abl-time"),
            |mut rng| {
                let o = model.generate(machines, horizon, &mut rng);
                black_box(analyze(&o, machines, horizon))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation_portfolio, bench_ablation_locality,
              bench_ablation_keepalive, bench_ablation_failures
}
criterion_main!(ablations);
