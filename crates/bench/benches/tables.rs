//! Benches for the table experiments: one group per table, on the in-house
//! wall-clock harness.

use mcs::prelude::*;
use mcs_bench::harness::{black_box, Harness};

fn main() {
    let mut h = Harness::new("tables");

    // Table 1: the formal model vs one simulated M/M/c run.
    h.bench("table1/erlang_c_analysis", |b| {
        b.iter(|| black_box(mmc(black_box(0.7), black_box(0.1), black_box(8))))
    });
    h.bench("table1/mm1_analysis", |b| {
        b.iter(|| black_box(mm1(black_box(2.0), black_box(3.0))))
    });

    // Table 2: the NFR calculus (P3's composition algebra).
    let profile = NfrProfile::new()
        .with(NfrKind::LatencyP95, 0.01)
        .with(NfrKind::Throughput, 1_000.0)
        .with(NfrKind::Availability, 0.999)
        .with(NfrKind::CostPerHour, 1.0);
    let targets = vec![
        NfrTarget::new(NfrKind::LatencyP95, 0.1),
        NfrTarget::new(NfrKind::Availability, 0.99),
    ];
    h.bench("table2/compose_serial_chain_of_10", |b| {
        b.iter(|| {
            let mut acc = profile.clone();
            for _ in 0..9 {
                acc = acc.compose_serial(&profile);
            }
            black_box(acc)
        })
    });
    h.bench("table2/score_against_targets", |b| b.iter(|| black_box(profile.score(&targets))));

    // Table 3: the MAPE-K loop and emergence detection kernels.
    h.bench("table3/mape_1000_observations", |b| {
        b.iter(|| {
            let mut l = MapeLoop::new(0.3, 0.8);
            for i in 0..1_000 {
                black_box(l.observe(0.5 + 0.3 * ((i % 13) as f64 / 13.0)));
            }
        })
    });
    let mut catalog = Catalog::new();
    for i in 0..4 {
        for cap in ["cache", "db", "queue", "gateway"] {
            catalog = catalog.with(
                &format!("{cap}-{i}"),
                cap,
                NfrProfile::new()
                    .with(NfrKind::LatencyP95, 0.001 * (i + 1) as f64)
                    .with(NfrKind::CostPerHour, 4.0 / (i + 1) as f64),
            );
        }
    }
    let nav_targets = [NfrTarget::new(NfrKind::LatencyP95, 0.05)];
    h.bench("table3/navigation_4x4_catalog", |b| {
        b.iter(|| {
            black_box(navigate_best_effort(
                &catalog,
                &["cache", "db", "queue", "gateway"],
                &nav_targets,
            ))
        })
    });

    // Table 4: per-use-case kernels (graph suite is the heaviest).
    let mut rng = RngStream::new(4, "bench-t4");
    let graph = rmat(11, 8, (0.57, 0.19, 0.19), &mut rng);
    h.bench("table4/graphalytics_bfs", |b| {
        b.iter(|| black_box(bfs(&graph, 0, &BspEngine::parallel(4))))
    });
    h.bench("table4/transaction_generation_10k", |b| {
        b.iter(|| {
            let mut generator = TransactionWorkloadGenerator::new(50.0, 2.0);
            let mut rng = RngStream::new(4, "bench-txn");
            black_box(generator.generate(SimTime::from_secs(200), 10_000, &mut rng))
        })
    });

    // Table 5: the paradigm pipeline — provisioning plan plus one run.
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        ..Default::default()
    });
    let mut rng = RngStream::new(5, "bench-t5");
    let jobs = generator.generate(SimTime::from_secs(4 * 3600), 400, &mut rng);
    h.bench("table5/plan_and_schedule", |b| {
        b.iter(|| {
            let jobs = jobs.clone();
            let mut policy = BacklogDriven { drain_target_secs: 1_800.0 };
            let plan = plan_provisioning(
                &jobs,
                8.0,
                2,
                32,
                SimDuration::from_mins(15),
                SimTime::from_secs(4 * 3600),
                &mut policy,
            );
            let cluster = Cluster::homogeneous(
                ClusterId(0),
                "b",
                MachineSpec::commodity("std-8", 8.0, 32.0),
                32,
            );
            let mut sched = ClusterScheduler::new(cluster, SchedulerConfig::default(), 5)
                .with_outages(plan.outages.clone());
            black_box(sched.run(jobs, SimTime::from_secs(30 * 86_400)))
        })
    });

    h.finish();
}
