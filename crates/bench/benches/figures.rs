//! Benches for the figure experiments: one group per figure, timing the
//! kernel behind each artifact on the in-house wall-clock harness. Setup
//! (generator/scheduler construction) runs inside the timed closure; it is
//! negligible next to the kernels, and every variant pays it equally, so
//! relative comparisons stand.

use mcs::prelude::*;
use mcs_bench::harness::{black_box, Harness};

fn main() {
    let mut h = Harness::new("figures");

    // Figure 1: the two sub-ecosystems' PageRank kernels.
    let mut rng = RngStream::new(1, "bench-fig1");
    let graph = rmat(11, 8, (0.57, 0.19, 0.19), &mut rng);
    h.bench("fig1/pagerank_pregel_10it", |b| {
        b.iter(|| black_box(pagerank(&graph, 10, &BspEngine::parallel(4))))
    });
    let adjacency: Vec<(u32, Vec<u32>)> =
        graph.vertices().map(|v| (v, graph.neighbors(v).to_vec())).collect();
    h.bench("fig1/mapreduce_one_round", |b| {
        let engine = MapReduceEngine { threads: 4, combine: false };
        b.iter(|| {
            let (out, _) = engine.run(
                &adjacency,
                |(_, neigh): &(u32, Vec<u32>), out: &mut Vec<(u32, f64)>| {
                    for &t in neigh {
                        out.push((t, 1.0));
                    }
                },
                |_k, vs: &[f64]| vs.iter().sum::<f64>(),
            );
            black_box(out)
        })
    });

    // Figure 2: adoption-dynamics simulation.
    let techs = vec![
        Technology { name: "a".into(), fitness: 1.2 },
        Technology { name: "b".into(), fitness: 1.0 },
    ];
    h.bench("fig2/adoption_3000_steps", |b| {
        b.iter(|| {
            let mut rng = RngStream::new(2, "bench-fig2");
            black_box(simulate_adoption(
                &techs,
                Regime::NonDarwinian { lock_in: 1.5 },
                3_000,
                &mut rng,
            ))
        })
    });

    // Figure 3: the datacenter scheduler's event throughput.
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        ..Default::default()
    });
    let mut rng = RngStream::new(3, "bench-fig3");
    let jobs = generator.generate(SimTime::from_secs(6 * 3600), 500, &mut rng);
    h.bench("fig3/schedule_500_jobs", |b| {
        b.iter(|| {
            let mut sched = ClusterScheduler::new(
                Cluster::homogeneous(
                    ClusterId(0),
                    "b",
                    MachineSpec::commodity("std-8", 8.0, 32.0),
                    32,
                ),
                SchedulerConfig::default(),
                3,
            );
            black_box(sched.run(jobs.clone(), SimTime::from_secs(30 * 86_400)))
        })
    });

    // Figure 4: a virtual-world day and a PCG batch.
    let model = PlayerModel { base_rate: 0.3, ..Default::default() };
    h.bench("fig4/world_day_static", |b| {
        b.iter(|| {
            black_box(simulate_world(
                &model,
                ZoneProvisioning::Static { zones: 10 },
                100,
                SimTime::from_secs(86_400),
                4,
            ))
        })
    });
    h.bench("fig4/pcg_10_instances", |b| {
        let generator = PuzzleGenerator { side: 3, scramble_moves: 20 };
        b.iter(|| {
            let mut rng = RngStream::new(4, "bench-pcg");
            black_box(generator.generate_batch(10, 100_000, &mut rng))
        })
    });

    // Figure 5: the FaaS platform's invocation throughput.
    let invocations = poisson_invocations("api", 1.0, SimTime::from_secs(3_600), 5);
    h.bench("fig5/run_3600s_of_invocations", |b| {
        b.iter(|| {
            let mut p =
                FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_mins(10)), 5);
            p.deploy(FunctionSpec::api_handler("api"));
            black_box(p.run(invocations.clone()))
        })
    });

    h.finish();
}
