//! Criterion benches for the figure experiments: one group per figure,
//! timing the kernel behind each artifact.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mcs::prelude::*;
use std::hint::black_box;

/// Figure 1: the two sub-ecosystems' PageRank kernels.
fn bench_fig1(c: &mut Criterion) {
    let mut rng = RngStream::new(1, "bench-fig1");
    let graph = rmat(11, 8, (0.57, 0.19, 0.19), &mut rng);
    let mut group = c.benchmark_group("fig1_bigdata");
    group.bench_function("pagerank_pregel_10it", |b| {
        b.iter(|| black_box(pagerank(&graph, 10, &BspEngine::parallel(4))))
    });
    let adjacency: Vec<(u32, Vec<u32>)> =
        graph.vertices().map(|v| (v, graph.neighbors(v).to_vec())).collect();
    group.bench_function("mapreduce_one_round", |b| {
        let engine = MapReduceEngine { threads: 4, combine: false };
        b.iter(|| {
            let (out, _) = engine.run(
                &adjacency,
                |(_, neigh): &(u32, Vec<u32>), out: &mut Vec<(u32, f64)>| {
                    for &t in neigh {
                        out.push((t, 1.0));
                    }
                },
                |_k, vs: &[f64]| vs.iter().sum::<f64>(),
            );
            black_box(out)
        })
    });
    group.finish();
}

/// Figure 2: adoption-dynamics simulation.
fn bench_fig2(c: &mut Criterion) {
    let techs = vec![
        Technology { name: "a".into(), fitness: 1.2 },
        Technology { name: "b".into(), fitness: 1.0 },
    ];
    c.benchmark_group("fig2_evolution")
        .bench_function("adoption_3000_steps", |b| {
            b.iter_batched(
                || RngStream::new(2, "bench-fig2"),
                |mut rng| {
                    black_box(simulate_adoption(
                        &techs,
                        Regime::NonDarwinian { lock_in: 1.5 },
                        3_000,
                        &mut rng,
                    ))
                },
                BatchSize::SmallInput,
            )
        });
}

/// Figure 3: the datacenter scheduler's event throughput.
fn bench_fig3(c: &mut Criterion) {
    let mut generator = BatchWorkloadGenerator::new(BatchWorkloadConfig {
        arrival_rate: 0.05,
        ..Default::default()
    });
    let mut rng = RngStream::new(3, "bench-fig3");
    let jobs = generator.generate(SimTime::from_secs(6 * 3600), 500, &mut rng);
    c.benchmark_group("fig3_datacenter")
        .bench_function("schedule_500_jobs", |b| {
            b.iter_batched(
                || {
                    ClusterScheduler::new(
                        Cluster::homogeneous(
                            ClusterId(0),
                            "b",
                            MachineSpec::commodity("std-8", 8.0, 32.0),
                            32,
                        ),
                        SchedulerConfig::default(),
                        3,
                    )
                },
                |mut sched| black_box(sched.run(jobs.clone(), SimTime::from_secs(30 * 86_400))),
                BatchSize::SmallInput,
            )
        });
}

/// Figure 4: a virtual-world day and a PCG batch.
fn bench_fig4(c: &mut Criterion) {
    let model = PlayerModel { base_rate: 0.3, ..Default::default() };
    let mut group = c.benchmark_group("fig4_gaming");
    group.bench_function("world_day_static", |b| {
        b.iter(|| {
            black_box(simulate_world(
                &model,
                ZoneProvisioning::Static { zones: 10 },
                100,
                SimTime::from_secs(86_400),
                4,
            ))
        })
    });
    group.bench_function("pcg_10_instances", |b| {
        let generator = PuzzleGenerator { side: 3, scramble_moves: 20 };
        b.iter_batched(
            || RngStream::new(4, "bench-pcg"),
            |mut rng| black_box(generator.generate_batch(10, 100_000, &mut rng)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Figure 5: the FaaS platform's invocation throughput.
fn bench_fig5(c: &mut Criterion) {
    let invocations = poisson_invocations("api", 1.0, SimTime::from_secs(3_600), 5);
    c.benchmark_group("fig5_faas").bench_function("run_3600s_of_invocations", |b| {
        b.iter_batched(
            || {
                let mut p = FaasPlatform::new(
                    KeepAlivePolicy::Fixed(SimDuration::from_mins(10)),
                    5,
                );
                p.deploy(FunctionSpec::api_handler("api"));
                p
            },
            |mut p| black_box(p.run(invocations.clone())),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5
}
criterion_main!(figures);
