//! The Function Management Layer of the Figure 5 FaaS reference
//! architecture: instance pools, cold/warm starts, keep-alive policies,
//! routing, and fine-grained billing (§6.5: "billed at a very fine
//! resource-granularity").

use crate::actor::{FaasActor, FaasMsg};
use mcs_simcore::dist::{Dist, Sample};
use mcs_simcore::engine::Simulation;
use mcs_simcore::metrics::Summary;
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A deployed cloud function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSpec {
    /// Unique function name.
    pub name: String,
    /// Memory footprint, GiB (the billing unit).
    pub memory_gb: f64,
    /// Execution-time distribution, seconds.
    pub exec_time: Dist,
    /// Cold-start delay (runtime + dependency initialization), seconds.
    pub cold_start_secs: f64,
    /// Warm-start overhead, seconds.
    pub warm_start_secs: f64,
}

impl FunctionSpec {
    /// A typical small API-handler function.
    pub fn api_handler(name: &str) -> Self {
        FunctionSpec {
            name: name.to_owned(),
            memory_gb: 0.25,
            exec_time: Dist::Gamma { shape: 2.0, scale: 0.01 }, // ~20 ms
            cold_start_secs: 0.8,
            warm_start_secs: 0.002,
        }
    }

    /// A heavier data-processing function.
    pub fn data_processor(name: &str) -> Self {
        FunctionSpec {
            name: name.to_owned(),
            memory_gb: 2.0,
            exec_time: Dist::Gamma { shape: 2.0, scale: 1.0 }, // ~2 s
            cold_start_secs: 2.5,
            warm_start_secs: 0.005,
        }
    }
}

/// How long an idle instance is kept warm before reclamation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeepAlivePolicy {
    /// Reclaim immediately (every invocation is cold — the no-pool baseline).
    None,
    /// Keep idle instances for a fixed window (the industry default).
    Fixed(SimDuration),
}

impl KeepAlivePolicy {
    fn window(&self) -> SimDuration {
        match self {
            KeepAlivePolicy::None => SimDuration::ZERO,
            KeepAlivePolicy::Fixed(d) => *d,
        }
    }
}

/// One function invocation request.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Which function to run.
    pub function: String,
    /// Arrival instant.
    pub at: SimTime,
}

/// The result of one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationResult {
    /// Which function ran.
    pub function: String,
    /// Arrival instant.
    pub at: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// Whether a new instance had to cold-start.
    pub cold: bool,
    /// End-to-end latency, seconds.
    pub latency_secs: f64,
    /// Pure execution time, seconds (billed).
    pub exec_secs: f64,
}

/// Platform-level metrics of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformReport {
    /// All invocation results, in completion order per function.
    pub invocations: Vec<InvocationResult>,
    /// Fraction of invocations that cold-started.
    pub cold_fraction: f64,
    /// Latency distribution, seconds.
    pub latency: Option<Summary>,
    /// GB-seconds billed to customers (execution only).
    pub billed_gb_secs: f64,
    /// GB-seconds of provider-side instance lifetime (including idle
    /// keep-alive): the provider's cost of the warm pool.
    pub provider_gb_secs: f64,
    /// Peak concurrent instances across functions.
    pub peak_instances: usize,
}

#[derive(Debug, Clone)]
struct Instance {
    free_at: SimTime,
    started_at: SimTime,
    last_used: SimTime,
}

/// The FaaS platform simulator. Instance pools persist across calls, so
/// warmth carries over between [`FaasPlatform::invoke`] calls and workflow
/// stages; [`FaasPlatform::run`] finalizes and resets the platform.
#[derive(Debug)]
pub struct FaasPlatform {
    functions: HashMap<String, FunctionSpec>,
    keep_alive: KeepAlivePolicy,
    rng: RngStream,
    pools: HashMap<String, Vec<Instance>>,
    last_invoke_at: SimTime,
    log: Vec<InvocationResult>,
    billed: f64,
    provider: f64,
    lifetime_events: Vec<(SimTime, i64)>,
    seed: u64,
}

impl FaasPlatform {
    /// Creates a platform with the given keep-alive policy.
    pub fn new(keep_alive: KeepAlivePolicy, seed: u64) -> Self {
        FaasPlatform {
            functions: HashMap::new(),
            keep_alive,
            rng: RngStream::new(seed, "faas"),
            pools: HashMap::new(),
            last_invoke_at: SimTime::ZERO,
            log: Vec::new(),
            billed: 0.0,
            provider: 0.0,
            lifetime_events: Vec::new(),
            seed,
        }
    }

    /// Deploys a function.
    ///
    /// # Panics
    /// Panics when a function with the same name is already deployed.
    pub fn deploy(&mut self, spec: FunctionSpec) {
        assert!(
            self.functions.insert(spec.name.clone(), spec).is_none(),
            "function already deployed"
        );
    }

    /// Seed this platform was built with (components deriving their own
    /// streams from it stay deterministic per platform seed).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Invokes `function` at instant `at` against the live instance pools.
    ///
    /// Invocations must be issued in non-decreasing time order for the
    /// keep-alive accounting to be exact.
    ///
    /// # Panics
    /// Panics when the function is unknown, or when `at` precedes an
    /// earlier invocation (keep-alive accounting needs monotone time).
    pub fn invoke(&mut self, function: &str, at: SimTime) -> InvocationResult {
        self.invoke_scaled(function, at, 1.0)
    }

    /// Like [`FaasPlatform::invoke`], but stretches the sampled execution
    /// time by `exec_factor` (≥ 1): the mechanism behind straggler faults
    /// and congestion, where the work itself runs slower and the instance
    /// stays occupied (and billed) for the stretched duration.
    ///
    /// # Panics
    /// Same conditions as [`FaasPlatform::invoke`].
    pub fn invoke_scaled(
        &mut self,
        function: &str,
        at: SimTime,
        exec_factor: f64,
    ) -> InvocationResult {
        assert!(
            at >= self.last_invoke_at,
            "invocations must be issued in non-decreasing time order"
        );
        self.last_invoke_at = at;
        let window = self.keep_alive.window();
        let spec = self
            .functions
            .get(function)
            .unwrap_or_else(|| panic!("unknown function {function}"))
            .clone();
        let pool = self.pools.entry(function.to_owned()).or_default();
        // Expire idle instances beyond the keep-alive window.
        let (provider, events) = (&mut self.provider, &mut self.lifetime_events);
        pool.retain(|i| {
            let expired = i.free_at <= at && (at - i.free_at) > window;
            if expired {
                let end = i.free_at + window;
                *provider += spec.memory_gb * (end - i.started_at).as_secs_f64();
                events.push((i.started_at, 1));
                events.push((end, -1));
            }
            !expired
        });
        // Warm, idle instance with the most recent use (LIFO keeps pools small).
        let warm_idx = pool
            .iter()
            .enumerate()
            .filter(|(_, i)| i.free_at <= at)
            .max_by_key(|(_, i)| i.last_used)
            .map(|(idx, _)| idx);
        let exec = spec.exec_time.sample(&mut self.rng).max(1e-4) * exec_factor.max(1.0);
        let (start_delay, cold) = match warm_idx {
            Some(_) => (spec.warm_start_secs, false),
            None => (spec.cold_start_secs, true),
        };
        let begin = at + SimDuration::from_secs_f64(start_delay);
        let finish = begin + SimDuration::from_secs_f64(exec);
        match warm_idx {
            Some(idx) => {
                pool[idx].free_at = finish;
                pool[idx].last_used = at;
            }
            None => {
                pool.push(Instance { free_at: finish, started_at: at, last_used: at });
            }
        }
        self.billed += spec.memory_gb * exec;
        let result = InvocationResult {
            function: function.to_owned(),
            at,
            finished: finish,
            cold,
            latency_secs: (finish - at).as_secs_f64(),
            exec_secs: exec,
        };
        self.log.push(result.clone());
        result
    }

    /// Runs a chronologically sorted invocation stream through the
    /// discrete-event engine, then finalizes the platform (drains pools,
    /// closes billing) and returns the report.
    ///
    /// This is a thin wrapper: it registers a single [`FaasActor`] in a
    /// [`Simulation`], schedules one [`FaasMsg::Invoke`] per invocation, and
    /// runs to quiescence.
    ///
    /// # Panics
    /// Panics when an invocation names an unknown function.
    pub fn run(&mut self, mut invocations: Vec<Invocation>) -> PlatformReport {
        invocations.sort_by_key(|i| i.at);
        let seed = self.seed;
        let mut actor = FaasActor::new(self);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(seed);
        let id = sim.add_actor(&mut actor);
        for inv in invocations {
            sim.schedule(inv.at, id, FaasMsg::Invoke { function: inv.function });
        }
        sim.run();
        drop(sim);
        drop(actor);
        self.finish()
    }

    /// Instances currently executing an invocation at instant `at`.
    pub fn busy_instances(&self, at: SimTime) -> usize {
        self.pools.values().flatten().filter(|i| i.free_at > at).count()
    }

    /// Instances idle (warm, not executing) at instant `at`, including any
    /// whose keep-alive window has lapsed but which have not yet been
    /// reclaimed by the lazy expiry in [`FaasPlatform::invoke`].
    pub fn idle_instances(&self, at: SimTime) -> usize {
        self.pools.values().flatten().filter(|i| i.free_at <= at).count()
    }

    /// Reclaims expired idle instances across every pool, charging each to
    /// its keep-alive expiry instant. Called before [`FaasPlatform::kill_idle`]
    /// so a failure never "kills" an instance that had already lapsed.
    pub fn expire_idle(&mut self, at: SimTime) {
        let window = self.keep_alive.window();
        let mut names: Vec<&String> = self.pools.keys().collect();
        names.sort_unstable();
        let names: Vec<String> = names.into_iter().cloned().collect();
        for name in names {
            let spec_gb = self.functions[&name].memory_gb;
            let pool = self.pools.get_mut(&name).expect("pool exists");
            let (provider, events) = (&mut self.provider, &mut self.lifetime_events);
            pool.retain(|i| {
                let expired = i.free_at <= at && (at - i.free_at) > window;
                if expired {
                    let end = i.free_at + window;
                    *provider += spec_gb * (end - i.started_at).as_secs_f64();
                    events.push((i.started_at, 1));
                    events.push((end, -1));
                }
                !expired
            });
        }
    }

    /// Kills up to `count` idle warm instances at instant `at` — least
    /// recently used first, ties broken by function name — and returns how
    /// many were killed. Models a correlated failure striking the warm pool:
    /// killed instances stop accruing provider cost at `at`, and subsequent
    /// invocations of those functions cold-start again.
    pub fn kill_idle(&mut self, at: SimTime, count: usize) -> usize {
        self.expire_idle(at);
        let mut candidates: Vec<(SimTime, String, usize)> = Vec::new();
        for (name, pool) in &self.pools {
            for (idx, inst) in pool.iter().enumerate() {
                if inst.free_at <= at {
                    candidates.push((inst.last_used, name.clone(), idx));
                }
            }
        }
        candidates.sort();
        candidates.truncate(count);
        let killed = candidates.len();
        // Remove per pool in descending index order so indices stay valid
        // and survivor order (hence future LIFO routing) is preserved.
        let mut by_pool: HashMap<String, Vec<usize>> = HashMap::new();
        for (_, name, idx) in candidates {
            by_pool.entry(name).or_default().push(idx);
        }
        let mut names: Vec<String> = by_pool.keys().cloned().collect();
        names.sort_unstable();
        for name in names {
            let spec_gb = self.functions[&name].memory_gb;
            let mut idxs = by_pool.remove(&name).expect("victims exist");
            idxs.sort_unstable_by(|a, b| b.cmp(a));
            let pool = self.pools.get_mut(&name).expect("pool exists");
            for idx in idxs {
                let inst = pool.remove(idx);
                self.provider += spec_gb * (at - inst.started_at).as_secs_f64();
                self.lifetime_events.push((inst.started_at, 1));
                self.lifetime_events.push((at, -1));
            }
        }
        killed
    }

    /// Finalizes the platform: closes every live instance at its keep-alive
    /// expiry, computes totals, and resets pools and logs for reuse.
    pub fn finish(&mut self) -> PlatformReport {
        let window = self.keep_alive.window();
        let mut names: Vec<String> = self.pools.keys().cloned().collect();
        names.sort_unstable();
        for name in names {
            let pool = self.pools.remove(&name).expect("pool exists");
            let spec = &self.functions[&name];
            for i in pool {
                let end = i.free_at + window;
                self.provider += spec.memory_gb * (end - i.started_at).as_secs_f64();
                self.lifetime_events.push((i.started_at, 1));
                self.lifetime_events.push((end, -1));
            }
        }
        let mut events = std::mem::take(&mut self.lifetime_events);
        events.sort_by_key(|&(t, d)| (t, -d));
        let mut level = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            level += d;
            peak = peak.max(level);
        }
        let results = std::mem::take(&mut self.log);
        let cold_count = results.iter().filter(|r| r.cold).count();
        let latencies: Vec<f64> = results.iter().map(|r| r.latency_secs).collect();
        let report = PlatformReport {
            cold_fraction: if results.is_empty() {
                0.0
            } else {
                cold_count as f64 / results.len() as f64
            },
            latency: Summary::of(&latencies),
            billed_gb_secs: self.billed,
            provider_gb_secs: self.provider,
            peak_instances: peak as usize,
            invocations: results,
        };
        self.billed = 0.0;
        self.provider = 0.0;
        self.last_invoke_at = SimTime::ZERO;
        report
    }
}

/// Generates a Poisson invocation stream for one function.
pub fn poisson_invocations(
    function: &str,
    rate_per_sec: f64,
    horizon: SimTime,
    seed: u64,
) -> Vec<Invocation> {
    let mut rng = RngStream::new(seed, "faas-arrivals");
    let mut out = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = Dist::Exponential { rate: rate_per_sec }.sample(&mut rng);
        t += SimDuration::from_secs_f64(gap);
        if t >= horizon {
            break;
        }
        out.push(Invocation { function: function.to_owned(), at: t });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(keep_alive: KeepAlivePolicy) -> FaasPlatform {
        let mut p = FaasPlatform::new(keep_alive, 1);
        p.deploy(FunctionSpec::api_handler("api"));
        p
    }

    #[test]
    fn first_invocation_is_cold_second_is_warm() {
        let mut p = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(600)));
        let report = p.run(vec![
            Invocation { function: "api".into(), at: SimTime::from_secs(0) },
            Invocation { function: "api".into(), at: SimTime::from_secs(10) },
        ]);
        assert_eq!(report.invocations.len(), 2);
        assert!(report.invocations[0].cold);
        assert!(!report.invocations[1].cold);
        assert!(report.invocations[0].latency_secs > report.invocations[1].latency_secs);
    }

    #[test]
    fn no_keep_alive_means_all_cold() {
        let mut p = platform(KeepAlivePolicy::None);
        let invs = poisson_invocations("api", 0.2, SimTime::from_secs(600), 3);
        let report = p.run(invs);
        assert_eq!(report.cold_fraction, 1.0);
    }

    #[test]
    fn longer_keep_alive_fewer_colds_more_provider_cost() {
        let invs = poisson_invocations("api", 0.05, SimTime::from_secs(4 * 3600), 5);
        let mut short = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(10)));
        let mut long = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(1800)));
        let r_short = short.run(invs.clone());
        let r_long = long.run(invs);
        assert!(
            r_long.cold_fraction < r_short.cold_fraction * 0.6,
            "long {} vs short {}",
            r_long.cold_fraction,
            r_short.cold_fraction
        );
        assert!(r_long.provider_gb_secs > r_short.provider_gb_secs);
        // Billing is identical: same executions.
        assert!((r_long.billed_gb_secs - r_short.billed_gb_secs).abs() < 1e-9);
    }

    #[test]
    fn concurrent_burst_spawns_instances() {
        let mut p = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(60)));
        // 10 simultaneous invocations cannot share one instance.
        let invs: Vec<Invocation> = (0..10)
            .map(|_| Invocation { function: "api".into(), at: SimTime::from_secs(1) })
            .collect();
        let report = p.run(invs);
        assert_eq!(report.cold_fraction, 1.0);
        assert!(report.peak_instances >= 10);
    }

    #[test]
    #[should_panic(expected = "unknown function")]
    fn unknown_function_panics() {
        let mut p = platform(KeepAlivePolicy::None);
        p.run(vec![Invocation { function: "nope".into(), at: SimTime::ZERO }]);
    }

    #[test]
    #[should_panic(expected = "already deployed")]
    fn duplicate_deploy_panics() {
        let mut p = platform(KeepAlivePolicy::None);
        p.deploy(FunctionSpec::api_handler("api"));
    }

    #[test]
    fn deterministic() {
        let invs = poisson_invocations("api", 0.1, SimTime::from_secs(3600), 7);
        let mut a = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(300)));
        let mut b = platform(KeepAlivePolicy::Fixed(SimDuration::from_secs(300)));
        assert_eq!(a.run(invs.clone()), b.run(invs));
    }
}
