//! # mcs-faas — the serverless platform of Figure 5
//!
//! The paper's §6.5 FaaS reference architecture (developed with the SPEC RG
//! Cloud group), as working layers:
//!
//! - **Function Management Layer** ([`platform`]): instance pools, cold and
//!   warm starts, keep-alive policies, LIFO routing, and fine-grained
//!   GB-second billing for both the customer and the provider.
//! - **Function Composition Layer** ([`composition`]): chains and parallel
//!   fan-outs of functions with per-step meta-scheduling overhead.
//!
//! The Resource and Resource-Orchestration layers of Figure 5 are provided
//! by `mcs-infra` and `mcs-rms` in full-stack experiments.
//!
//! ## Example
//! ```
//! use mcs_faas::prelude::*;
//! use mcs_simcore::prelude::*;
//!
//! let mut platform = FaasPlatform::new(
//!     KeepAlivePolicy::Fixed(SimDuration::from_secs(600)), 42,
//! );
//! platform.deploy(FunctionSpec::api_handler("hello"));
//! let report = platform.run(poisson_invocations(
//!     "hello", 1.0, SimTime::from_secs(600), 42,
//! ));
//! assert!(report.cold_fraction < 0.2);
//! ```

pub mod actor;
pub mod composition;
pub mod platform;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::actor::{CongestionConfig, FaasActor, FaasFault, FaasMsg, FaasObserver};
    pub use crate::composition::{
        execute_composition, Composition, CompositionResult, Stage,
    };
    pub use crate::platform::{
        poisson_invocations, FaasPlatform, FunctionSpec, Invocation, InvocationResult,
        KeepAlivePolicy, PlatformReport,
    };
}
