//! The Function Composition Layer of Figure 5: workflows of functions.
//!
//! User-defined functions "interact with each other through an event-driven
//! paradigm … these FaaS workloads can often be modeled as (complex)
//! workflows" (§6.5). A composition is a sequence of stages; each stage
//! invokes one function or a parallel fan-out, and the layer adds a
//! meta-scheduling overhead per step — the quantity the Figure 5 experiment
//! sweeps against workflow depth.

use crate::platform::{FaasPlatform, InvocationResult};
use mcs_simcore::time::{SimDuration, SimTime};

/// One stage of a composition.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// Invoke a single function.
    Call(String),
    /// Invoke several functions in parallel; the stage completes when all do.
    Parallel(Vec<String>),
}

/// A function workflow: stages executed in order.
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Workflow name.
    pub name: String,
    /// Stages, in execution order.
    pub stages: Vec<Stage>,
    /// Meta-scheduling overhead the composition layer adds per stage
    /// transition, seconds.
    pub step_overhead_secs: f64,
}

impl Composition {
    /// A linear chain over the given function names.
    pub fn chain(name: &str, functions: &[&str]) -> Self {
        Composition {
            name: name.to_owned(),
            stages: functions.iter().map(|f| Stage::Call((*f).to_owned())).collect(),
            step_overhead_secs: 0.01,
        }
    }

    /// Number of stages.
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

/// The result of one workflow execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionResult {
    /// Workflow name.
    pub name: String,
    /// Start instant.
    pub started: SimTime,
    /// Completion instant.
    pub finished: SimTime,
    /// End-to-end latency, seconds.
    pub latency_secs: f64,
    /// Seconds spent purely in function execution.
    pub exec_secs: f64,
    /// Seconds added by the composition layer (step overheads).
    pub overhead_secs: f64,
    /// Cold starts encountered.
    pub cold_starts: usize,
    /// Every underlying invocation.
    pub invocations: Vec<InvocationResult>,
}

/// Executes `composition` once on `platform`, starting at `at`.
pub fn execute_composition(
    platform: &mut FaasPlatform,
    composition: &Composition,
    at: SimTime,
) -> CompositionResult {
    let mut now = at;
    let mut all = Vec::new();
    let mut overhead = 0.0f64;
    for (i, stage) in composition.stages.iter().enumerate() {
        if i > 0 {
            overhead += composition.step_overhead_secs;
            now += SimDuration::from_secs_f64(composition.step_overhead_secs);
        }
        let calls: Vec<String> = match stage {
            Stage::Call(f) => vec![f.clone()],
            Stage::Parallel(fs) => fs.clone(),
        };
        let results: Vec<_> = calls.iter().map(|f| platform.invoke(f, now)).collect();
        let stage_end = results.iter().map(|r| r.finished).max().unwrap_or(now);
        all.extend(results);
        now = stage_end;
    }
    let exec_secs = all.iter().map(|r| r.exec_secs).sum();
    CompositionResult {
        name: composition.name.clone(),
        started: at,
        finished: now,
        latency_secs: (now - at).as_secs_f64(),
        exec_secs,
        overhead_secs: overhead,
        cold_starts: all.iter().filter(|r| r.cold).count(),
        invocations: all,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{FunctionSpec, KeepAlivePolicy};
    use mcs_simcore::dist::Dist;

    fn platform() -> FaasPlatform {
        let mut p = FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_secs(600)), 1);
        for name in ["extract", "transform", "load"] {
            p.deploy(FunctionSpec {
                name: name.to_owned(),
                memory_gb: 0.5,
                exec_time: Dist::constant(0.1),
                cold_start_secs: 1.0,
                warm_start_secs: 0.0,
            });
        }
        p
    }

    #[test]
    fn chain_latency_is_sum_of_stages() {
        let mut p = platform();
        let wf = Composition {
            step_overhead_secs: 0.05,
            ..Composition::chain("etl", &["extract", "transform", "load"])
        };
        let r = execute_composition(&mut p, &wf, SimTime::ZERO);
        // 3 cold starts (1.0) + 3 execs (0.1) + 2 overheads (0.05).
        assert!((r.latency_secs - (3.0 * 1.1 + 0.1)).abs() < 1e-9, "{}", r.latency_secs);
        assert_eq!(r.cold_starts, 3);
        assert!((r.overhead_secs - 0.1).abs() < 1e-12);
        assert!((r.exec_secs - 0.3).abs() < 1e-9);
    }

    #[test]
    fn second_run_is_warm() {
        let mut p = platform();
        let wf = Composition::chain("etl", &["extract", "transform", "load"]);
        let first = execute_composition(&mut p, &wf, SimTime::ZERO);
        let second = execute_composition(&mut p, &wf, SimTime::from_secs(30));
        assert_eq!(first.cold_starts, 3);
        assert_eq!(second.cold_starts, 0);
        assert!(second.latency_secs < first.latency_secs / 2.0);
    }

    #[test]
    fn parallel_stage_takes_max_not_sum() {
        let mut p = platform();
        let fan = Composition {
            name: "fan".into(),
            stages: vec![Stage::Parallel(vec![
                "extract".into(),
                "transform".into(),
                "load".into(),
            ])],
            step_overhead_secs: 0.0,
        };
        let r = execute_composition(&mut p, &fan, SimTime::ZERO);
        // All three in parallel, cold: 1.0 + 0.1.
        assert!((r.latency_secs - 1.1).abs() < 1e-9, "{}", r.latency_secs);
        assert_eq!(r.invocations.len(), 3);
    }

    #[test]
    fn overhead_grows_with_depth() {
        let mut p = platform();
        // Warm everything first.
        let warmup = Composition::chain("w", &["extract"]);
        let _ = execute_composition(&mut p, &warmup, SimTime::ZERO);
        let deep = Composition {
            step_overhead_secs: 0.2,
            ..Composition::chain(
                "deep",
                &["extract", "extract", "extract", "extract", "extract"],
            )
        };
        let r = execute_composition(&mut p, &deep, SimTime::from_secs(10));
        assert!((r.overhead_secs - 0.8).abs() < 1e-12);
        assert_eq!(r.cold_starts, 0);
        assert_eq!(deep.depth(), 5);
    }
}
