//! The FaaS platform as a discrete-event actor.
//!
//! [`FaasActor`] wraps a [`FaasPlatform`] so the platform can participate in
//! a composed [`Simulation`](mcs_simcore::engine::Simulation) alongside a
//! scheduler, an autoscaling governor, and a failure injector. Standalone
//! replay ([`FaasPlatform::run`]) uses the same actor with no capacity cap
//! and no observer, so both paths share one code path through the engine.

use crate::platform::FaasPlatform;
use mcs_simcore::codec::Json;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::time::SimDuration;
use mcs_simcore::trace::payload;

/// The FaaS platform's message vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasMsg {
    /// An invocation request arrives for `function`.
    Invoke {
        /// Target function name.
        function: String,
    },
    /// Adjust the concurrent-instance capacity by a signed delta (from the
    /// autoscaling governor). Ignored when the actor has no capacity cap.
    Scale(i64),
    /// A correlated failure kills this fraction of the idle warm pool,
    /// least-recently-used instances first.
    KillWarm {
        /// Fraction of idle instances to kill, in `[0, 1]`.
        fraction: f64,
    },
    /// Periodic self-scheduled demand observation (drives the observer
    /// callback, typically toward an autoscaling governor).
    Report,
}

/// Callback invoked on each [`FaasMsg::Report`] with the interval's measured
/// demand (instances needed) and current supply (the capacity cap).
pub type FaasObserver<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, f64, usize) + 'a>;

/// Drives a [`FaasPlatform`] from engine messages.
///
/// Without a capacity cap the actor admits every invocation, exactly like
/// the platform's standalone replay. With [`FaasActor::with_capacity`], an
/// invocation arriving while `busy >= capacity` is rejected (counted, traced,
/// not executed) — the signal the autoscaling governor reacts to.
pub struct FaasActor<'a, M = FaasMsg> {
    platform: &'a mut FaasPlatform,
    capacity: Option<usize>,
    report_every: Option<SimDuration>,
    observer: Option<FaasObserver<'a, M>>,
    window_peak: usize,
    window_rejected: usize,
    rejected: u64,
    invoked: u64,
}

impl<'a, M> FaasActor<'a, M> {
    /// Wraps `platform` with no capacity cap and no observer.
    pub fn new(platform: &'a mut FaasPlatform) -> Self {
        FaasActor {
            platform,
            capacity: None,
            report_every: None,
            observer: None,
            window_peak: 0,
            window_rejected: 0,
            rejected: 0,
            invoked: 0,
        }
    }

    /// Caps concurrent instances; excess invocations are rejected.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Installs a periodic demand observer. The first [`FaasMsg::Report`]
    /// must be scheduled externally; the actor re-arms subsequent ones.
    #[must_use]
    pub fn with_observer(
        mut self,
        report_every: SimDuration,
        observer: impl FnMut(&mut Context<'_, M>, f64, usize) + 'a,
    ) -> Self {
        assert!(!report_every.is_zero(), "report interval must be positive");
        self.report_every = Some(report_every);
        self.observer = Some(Box::new(observer));
        self
    }

    /// Invocations rejected by the capacity cap so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Invocations admitted and executed so far.
    pub fn invoked(&self) -> u64 {
        self.invoked
    }

    /// Current capacity cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    fn invoke(&mut self, ctx: &mut Context<'_, M>, function: &str) {
        let now = ctx.now();
        let busy = self.platform.busy_instances(now);
        if let Some(cap) = self.capacity {
            if busy >= cap {
                self.rejected += 1;
                self.window_rejected += 1;
                self.window_peak = self.window_peak.max(busy + 1);
                ctx.emit(
                    "faas",
                    "reject",
                    payload(vec![
                        ("function", Json::Str(function.to_owned())),
                        ("busy", Json::UInt(busy as u64)),
                        ("capacity", Json::UInt(cap as u64)),
                    ]),
                );
                return;
            }
        }
        let result = self.platform.invoke(function, now);
        self.invoked += 1;
        self.window_peak = self.window_peak.max(busy + 1);
        ctx.emit(
            "faas",
            "invoke",
            payload(vec![
                ("function", Json::Str(result.function)),
                ("cold", Json::Bool(result.cold)),
                ("latency_secs", Json::Float(result.latency_secs)),
            ]),
        );
    }

    fn scale(&mut self, ctx: &mut Context<'_, M>, delta: i64) {
        let Some(cap) = self.capacity else { return };
        let next = (cap as i64 + delta).max(1) as usize;
        self.capacity = Some(next);
        ctx.emit(
            "faas",
            "scale",
            payload(vec![
                ("delta", Json::Int(delta)),
                ("capacity", Json::UInt(next as u64)),
            ]),
        );
    }

    fn kill_warm(&mut self, ctx: &mut Context<'_, M>, fraction: f64) {
        let now = ctx.now();
        let idle = self.platform.idle_instances(now);
        let victims = (idle as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize;
        let killed = self.platform.kill_idle(now, victims);
        ctx.emit(
            "faas",
            "kill_warm",
            payload(vec![
                ("idle", Json::UInt(idle as u64)),
                ("killed", Json::UInt(killed as u64)),
            ]),
        );
    }

    fn report(&mut self, ctx: &mut Context<'_, M>)
    where
        M: MessageEnvelope<FaasMsg>,
    {
        let demand = (self.window_peak + self.window_rejected) as f64;
        let supply = self.capacity.unwrap_or_else(|| self.platform.busy_instances(ctx.now()));
        self.window_peak = 0;
        self.window_rejected = 0;
        if let Some(observer) = self.observer.as_mut() {
            observer(ctx, demand, supply);
        }
        if let Some(every) = self.report_every {
            ctx.send_self(every, M::wrap(FaasMsg::Report));
        }
    }
}

impl<M: MessageEnvelope<FaasMsg>> Actor<M> for FaasActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            FaasMsg::Invoke { function } => self.invoke(ctx, &function),
            FaasMsg::Scale(delta) => self.scale(ctx, delta),
            FaasMsg::KillWarm { fraction } => self.kill_warm(ctx, fraction),
            FaasMsg::Report => self.report(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{FunctionSpec, KeepAlivePolicy};
    use mcs_simcore::engine::Simulation;
    use mcs_simcore::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn platform() -> FaasPlatform {
        let mut p = FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_secs(600)), 1);
        p.deploy(FunctionSpec::api_handler("api"));
        p
    }

    #[test]
    fn capacity_cap_rejects_excess_invocations() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(2);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        for _ in 0..5 {
            sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        }
        sim.run();
        let rejects = sim.trace().count("faas", "reject");
        drop(sim);
        assert_eq!(actor.invoked(), 2);
        assert_eq!(actor.rejected(), 3);
        assert_eq!(rejects, 3);
    }

    #[test]
    fn kill_warm_forces_cold_restart() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(100), id, FaasMsg::KillWarm { fraction: 1.0 });
        sim.schedule(SimTime::from_secs(200), id, FaasMsg::Invoke { function: "api".into() });
        sim.run();
        let colds: Vec<bool> = sim
            .trace()
            .select("faas", "invoke")
            .iter()
            .filter_map(|e| match e.payload.get("cold") {
                Some(Json::Bool(b)) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(colds, vec![true, true], "warm kill must force a second cold start");
        assert_eq!(sim.trace().count("faas", "kill_warm"), 1);
    }

    #[test]
    fn report_observer_sees_demand_and_rearms() {
        let seen: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(1).with_observer(
            SimDuration::from_secs(60),
            move |_ctx, demand, supply| sink.borrow_mut().push((demand, supply)),
        );
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        sim.set_horizon(SimTime::from_secs(150));
        let id = sim.add_actor(&mut actor);
        // Two simultaneous arrivals against capacity 1: one rejected.
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(60), id, FaasMsg::Report);
        sim.run();
        // First window: peak 2 (one admitted + one over cap) + 1 reject = 3.
        // Second window (re-armed at 120 s): no traffic.
        assert_eq!(*seen.borrow(), vec![(3.0, 1), (0.0, 1)]);
    }

    #[test]
    fn scale_message_moves_the_cap() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(2);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Scale(3));
        sim.schedule(SimTime::from_secs(2), id, FaasMsg::Scale(-10));
        sim.run();
        drop(sim);
        // 2 + 3 = 5, then floored at 1.
        assert_eq!(actor.capacity(), Some(1));
    }
}
