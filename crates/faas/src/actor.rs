//! The FaaS platform as a discrete-event actor.
//!
//! [`FaasActor`] wraps a [`FaasPlatform`] so the platform can participate in
//! a composed [`Simulation`](mcs_simcore::engine::Simulation) alongside a
//! scheduler, an autoscaling governor, and a failure injector. Standalone
//! replay ([`FaasPlatform::run`]) uses the same actor with no capacity cap
//! and no observer, so both paths share one code path through the engine.
//!
//! With [`FaasActor::with_resilience`], invocations gain failure outcomes
//! (partition fast-fails, gray-failure draws, timeout breaches, straggler
//! slowdowns — see [`FaasFault`]) and the full resilience stack from
//! [`mcs_simcore::resilience`]: per-function circuit breaking, bounded
//! retry with backoff behind a bulkhead, and utilization-threshold load
//! shedding engaged by the autoscaling governor. Every resilience action is
//! emitted onto the trace bus (`faas/invoke_failed`, `faas/retry_scheduled`,
//! `faas/breaker`, `faas/shed`, …), so experiments read outcomes off the
//! bus, not side counters.

use crate::platform::FaasPlatform;
use mcs_simcore::engine::{Actor, Context, MessageEnvelope};
use mcs_simcore::resilience::{Bulkhead, CircuitBreaker, ResilienceConfig};
use mcs_simcore::rng::RngStream;
use mcs_simcore::time::SimDuration;
use mcs_simcore::trace::Field;
use std::collections::HashMap;

/// A service-level fault window affecting the platform (the FaaS-side view
/// of the injector's non-crash fault kinds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaasFault {
    /// Executions run `factor`× slower while active (stragglers).
    Slowdown {
        /// Execution-time multiplier (≥ 1).
        factor: f64,
    },
    /// Invocations fail with this probability while active, after doing
    /// (and billing) their work — the gray-failure signature.
    Gray {
        /// Per-invocation failure probability, in `[0, 1]`.
        error_rate: f64,
    },
    /// Requests never reach the platform while active.
    Partition,
}

impl FaasFault {
    fn name(&self) -> &'static str {
        match self {
            FaasFault::Slowdown { .. } => "slowdown",
            FaasFault::Gray { .. } => "gray",
            FaasFault::Partition => "partition",
        }
    }
}

/// Optional congestion model: when the platform runs above a utilization
/// knee, executions stretch — the queueing-delay stand-in that makes
/// overload (and hence load shedding) consequential.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CongestionConfig {
    /// Utilization (including the arriving request) above which latency
    /// degrades, in `(0, 1)`.
    pub knee: f64,
    /// Execution-time multiplier at 100 % utilization; the penalty ramps
    /// linearly from 1 at the knee.
    pub max_penalty: f64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig { knee: 0.75, max_penalty: 6.0 }
    }
}

impl CongestionConfig {
    fn multiplier(&self, busy: usize, capacity: usize) -> f64 {
        let util = (busy as f64 + 1.0) / capacity.max(1) as f64;
        if util <= self.knee || self.knee >= 1.0 {
            1.0
        } else {
            let x = ((util - self.knee) / (1.0 - self.knee)).clamp(0.0, 1.0);
            1.0 + x * (self.max_penalty - 1.0).max(0.0)
        }
    }
}

/// The FaaS platform's message vocabulary.
#[derive(Debug, Clone, PartialEq)]
pub enum FaasMsg {
    /// An invocation request arrives for `function`.
    Invoke {
        /// Target function name.
        function: String,
    },
    /// A self-scheduled retry of a failed invocation (attempt is 1-based;
    /// the original request was attempt 1).
    Retry {
        /// Target function name.
        function: String,
        /// Which attempt this delivery is.
        attempt: u32,
    },
    /// Adjust the concurrent-instance capacity by a signed delta (from the
    /// autoscaling governor). Ignored when the actor has no capacity cap.
    Scale(i64),
    /// A correlated failure kills this fraction of the idle warm pool,
    /// least-recently-used instances first.
    KillWarm {
        /// Fraction of idle instances to kill, in `[0, 1]`.
        fraction: f64,
    },
    /// A service-level fault window opens.
    Fault(FaasFault),
    /// A previously opened fault window closes.
    FaultClear(FaasFault),
    /// The governor engages (`true`) or disengages (`false`) load shedding.
    SetShedding(bool),
    /// Periodic self-scheduled demand observation (drives the observer
    /// callback, typically toward an autoscaling governor).
    Report,
}

/// Callback invoked on each [`FaasMsg::Report`] with the interval's measured
/// demand (instances needed) and current supply (the capacity cap).
pub type FaasObserver<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, f64, usize) + 'a>;

/// Callback invoked after each *successful* invocation with its latency in
/// seconds. Composed scenarios use it to push the response payload onto the
/// flow-level network model, so FaaS answers contend for bandwidth with
/// every other tenant.
pub type FaasResponseHook<'a, M> = Box<dyn FnMut(&mut Context<'_, M>, f64) + 'a>;

/// Drives a [`FaasPlatform`] from engine messages.
///
/// Without a capacity cap the actor admits every invocation, exactly like
/// the platform's standalone replay. With [`FaasActor::with_capacity`], an
/// invocation arriving while `busy >= capacity` is rejected (counted, traced,
/// not executed) — the signal the autoscaling governor reacts to.
pub struct FaasActor<'a, M = FaasMsg> {
    platform: &'a mut FaasPlatform,
    capacity: Option<usize>,
    report_every: Option<SimDuration>,
    observer: Option<FaasObserver<'a, M>>,
    on_response: Option<FaasResponseHook<'a, M>>,
    window_peak: usize,
    window_rejected: usize,
    rejected: u64,
    invoked: u64,
    resilience: ResilienceConfig,
    res_rng: RngStream,
    breakers: HashMap<String, CircuitBreaker>,
    retry_bulkhead: Option<Bulkhead>,
    active_faults: Vec<FaasFault>,
    shedding: bool,
    congestion: Option<CongestionConfig>,
    failed: u64,
    shed: u64,
    retries_scheduled: u64,
}

impl<'a, M> FaasActor<'a, M> {
    /// Wraps `platform` with no capacity cap, no observer, and every
    /// resilience mechanism disabled.
    pub fn new(platform: &'a mut FaasPlatform) -> Self {
        let res_rng = RngStream::new(platform.seed(), "faas-resilience");
        FaasActor {
            platform,
            capacity: None,
            report_every: None,
            observer: None,
            on_response: None,
            window_peak: 0,
            window_rejected: 0,
            rejected: 0,
            invoked: 0,
            resilience: ResilienceConfig::none(),
            res_rng,
            breakers: HashMap::new(),
            retry_bulkhead: None,
            active_faults: Vec::new(),
            shedding: false,
            congestion: None,
            failed: 0,
            shed: 0,
            retries_scheduled: 0,
        }
    }

    /// Enables the given resilience mechanisms. Gray-failure draws and
    /// jittered backoff use a stream derived from the platform seed, so
    /// runs stay deterministic per seed.
    #[must_use]
    pub fn with_resilience(mut self, config: ResilienceConfig) -> Self {
        self.retry_bulkhead = config.retry_bulkhead.map(Bulkhead::new);
        self.resilience = config;
        self
    }

    /// Enables the utilization-congestion model: executions stretch when
    /// the platform runs above the knee.
    #[must_use]
    pub fn with_congestion(mut self, congestion: CongestionConfig) -> Self {
        self.congestion = Some(congestion);
        self
    }

    /// Caps concurrent instances; excess invocations are rejected.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity.max(1));
        self
    }

    /// Installs a periodic demand observer. The first [`FaasMsg::Report`]
    /// must be scheduled externally; the actor re-arms subsequent ones.
    #[must_use]
    pub fn with_observer(
        mut self,
        report_every: SimDuration,
        observer: impl FnMut(&mut Context<'_, M>, f64, usize) + 'a,
    ) -> Self {
        assert!(!report_every.is_zero(), "report interval must be positive");
        self.report_every = Some(report_every);
        self.observer = Some(Box::new(observer));
        self
    }

    /// Installs the per-success response hook (see [`FaasResponseHook`]).
    #[must_use]
    pub fn with_response_hook(
        mut self,
        hook: impl FnMut(&mut Context<'_, M>, f64) + 'a,
    ) -> Self {
        self.on_response = Some(Box::new(hook));
        self
    }

    /// Invocations rejected by the capacity cap so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Invocations admitted and executed so far.
    pub fn invoked(&self) -> u64 {
        self.invoked
    }

    /// Current capacity cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Invocations that ended in failure (partition, gray, timeout, or a
    /// fast-fail at an open circuit breaker).
    pub fn failed(&self) -> u64 {
        self.failed
    }

    /// Requests dropped by engaged load shedding.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Retries scheduled so far.
    pub fn retries_scheduled(&self) -> u64 {
        self.retries_scheduled
    }

    fn emit_breaker(ctx: &mut Context<'_, M>, function: &str, state: &'static str) {
        ctx.emit_fields(
            "faas",
            "breaker",
            &[("function", Field::Str(function)), ("state", Field::Str(state))],
        );
    }

    fn emit_failed(
        ctx: &mut Context<'_, M>,
        function: &str,
        reason: &'static str,
        attempt: u32,
        wasted_exec_secs: f64,
    ) {
        ctx.emit_fields(
            "faas",
            "invoke_failed",
            &[
                ("function", Field::Str(function)),
                ("reason", Field::Str(reason)),
                ("attempt", Field::U64(attempt as u64)),
                ("wasted_exec_secs", Field::F64(wasted_exec_secs)),
            ],
        );
    }

    /// Schedules a backoff retry after failure number `attempt` of a
    /// request, if the policy's budget and the retry bulkhead allow one.
    fn schedule_retry(&mut self, ctx: &mut Context<'_, M>, function: &str, attempt: u32)
    where
        M: MessageEnvelope<FaasMsg>,
    {
        let Some(policy) = self.resilience.retry else { return };
        let Some(delay) = policy.delay_after(attempt, &mut self.res_rng) else {
            ctx.emit_fields(
                "faas",
                "retry_exhausted",
                &[("function", Field::Str(function)), ("attempt", Field::U64(attempt as u64))],
            );
            return;
        };
        if let Some(bh) = &mut self.retry_bulkhead {
            if !bh.try_acquire() {
                ctx.emit_fields(
                    "faas",
                    "retry_dropped",
                    &[("function", Field::Str(function)), ("attempt", Field::U64(attempt as u64))],
                );
                return;
            }
        }
        self.retries_scheduled += 1;
        ctx.emit_fields(
            "faas",
            "retry_scheduled",
            &[
                ("function", Field::Str(function)),
                ("attempt", Field::U64(attempt as u64)),
                ("delay_secs", Field::F64(delay.as_secs_f64())),
            ],
        );
        ctx.send_self(
            delay,
            M::wrap(FaasMsg::Retry { function: function.to_owned(), attempt: attempt + 1 }),
        );
    }

    fn breaker_on_failure(&mut self, ctx: &mut Context<'_, M>, function: &str) {
        if let Some(b) = self.breakers.get_mut(function) {
            let now = ctx.now();
            if let Some(state) = b.on_failure(now) {
                Self::emit_breaker(ctx, function, state.name());
            }
        }
    }

    fn invoke(&mut self, ctx: &mut Context<'_, M>, function: &str, attempt: u32)
    where
        M: MessageEnvelope<FaasMsg>,
    {
        let now = ctx.now();

        // Per-function circuit breaker: fast-fail while open.
        if let Some(cfg) = self.resilience.breaker {
            let breaker = self
                .breakers
                .entry(function.to_owned())
                .or_insert_with(|| CircuitBreaker::new(cfg));
            let (allowed, transition) = breaker.allow(now);
            if let Some(state) = transition {
                Self::emit_breaker(ctx, function, state.name());
            }
            if !allowed {
                self.failed += 1;
                Self::emit_failed(ctx, function, "breaker_open", attempt, 0.0);
                self.schedule_retry(ctx, function, attempt);
                return;
            }
        }

        let busy = self.platform.busy_instances(now);

        // Governor-engaged load shedding: drop at admission while over the
        // utilization knee, instead of queueing into congestion.
        if self.shedding {
            if let (Some(shedder), Some(cap)) = (self.resilience.shedder, self.capacity) {
                if !shedder.admits(busy, cap) {
                    self.shed += 1;
                    self.window_rejected += 1;
                    ctx.emit_fields(
                        "faas",
                        "shed",
                        &[
                            ("function", Field::Str(function)),
                            ("busy", Field::U64(busy as u64)),
                            ("capacity", Field::U64(cap as u64)),
                        ],
                    );
                    return;
                }
            }
        }

        if let Some(cap) = self.capacity {
            if busy >= cap {
                self.rejected += 1;
                self.window_rejected += 1;
                self.window_peak = self.window_peak.max(busy + 1);
                ctx.emit_fields(
                    "faas",
                    "reject",
                    &[
                        ("function", Field::Str(function)),
                        ("busy", Field::U64(busy as u64)),
                        ("capacity", Field::U64(cap as u64)),
                    ],
                );
                self.schedule_retry(ctx, function, attempt);
                return;
            }
        }

        // Partition windows fast-fail before any work is done.
        if self.active_faults.iter().any(|f| matches!(f, FaasFault::Partition)) {
            self.failed += 1;
            self.breaker_on_failure(ctx, function);
            Self::emit_failed(ctx, function, "partition", attempt, 0.0);
            self.schedule_retry(ctx, function, attempt);
            return;
        }

        // Execute, stretched by active stragglers and congestion.
        let slow_factor = self
            .active_faults
            .iter()
            .filter_map(|f| match f {
                FaasFault::Slowdown { factor } => Some(*factor),
                _ => None,
            })
            .fold(1.0_f64, f64::max);
        let congestion = match (self.congestion, self.capacity) {
            (Some(c), Some(cap)) => c.multiplier(busy, cap),
            _ => 1.0,
        };
        let result = self.platform.invoke_scaled(function, now, slow_factor * congestion);
        self.window_peak = self.window_peak.max(busy + 1);

        // Gray windows fail the work after it ran (and was billed).
        let gray_rate = self
            .active_faults
            .iter()
            .filter_map(|f| match f {
                FaasFault::Gray { error_rate } => Some(*error_rate),
                _ => None,
            })
            .fold(0.0_f64, f64::max);
        if gray_rate > 0.0 && self.res_rng.next_f64() < gray_rate {
            self.failed += 1;
            self.breaker_on_failure(ctx, function);
            Self::emit_failed(ctx, function, "gray", attempt, result.exec_secs);
            self.schedule_retry(ctx, function, attempt);
            return;
        }

        // A success slower than the latency budget counts as a failure.
        if let Some(timeout) = self.resilience.timeout {
            if timeout.exceeded_by(SimDuration::from_secs_f64(result.latency_secs)) {
                self.failed += 1;
                self.breaker_on_failure(ctx, function);
                Self::emit_failed(ctx, function, "timeout", attempt, result.exec_secs);
                self.schedule_retry(ctx, function, attempt);
                return;
            }
        }

        if let Some(b) = self.breakers.get_mut(function) {
            if let Some(state) = b.on_success() {
                Self::emit_breaker(ctx, function, state.name());
            }
        }
        self.invoked += 1;
        ctx.emit_fields(
            "faas",
            "invoke",
            &[
                ("function", Field::Str(&result.function)),
                ("cold", Field::Bool(result.cold)),
                ("latency_secs", Field::F64(result.latency_secs)),
            ],
        );
        if let Some(hook) = self.on_response.as_mut() {
            hook(ctx, result.latency_secs);
        }
    }

    fn scale(&mut self, ctx: &mut Context<'_, M>, delta: i64) {
        let Some(cap) = self.capacity else { return };
        let next = (cap as i64 + delta).max(1) as usize;
        self.capacity = Some(next);
        ctx.emit_fields(
            "faas",
            "scale",
            &[("delta", Field::I64(delta)), ("capacity", Field::U64(next as u64))],
        );
    }

    fn kill_warm(&mut self, ctx: &mut Context<'_, M>, fraction: f64) {
        let now = ctx.now();
        let idle = self.platform.idle_instances(now);
        let victims = (idle as f64 * fraction.clamp(0.0, 1.0)).ceil() as usize;
        let killed = self.platform.kill_idle(now, victims);
        ctx.emit_fields(
            "faas",
            "kill_warm",
            &[("idle", Field::U64(idle as u64)), ("killed", Field::U64(killed as u64))],
        );
    }

    fn report(&mut self, ctx: &mut Context<'_, M>)
    where
        M: MessageEnvelope<FaasMsg>,
    {
        let demand = (self.window_peak + self.window_rejected) as f64;
        let supply = self.capacity.unwrap_or_else(|| self.platform.busy_instances(ctx.now()));
        self.window_peak = 0;
        self.window_rejected = 0;
        if let Some(observer) = self.observer.as_mut() {
            observer(ctx, demand, supply);
        }
        if let Some(every) = self.report_every {
            ctx.send_self(every, M::wrap(FaasMsg::Report));
        }
    }
}

impl<M: MessageEnvelope<FaasMsg>> Actor<M> for FaasActor<'_, M> {
    fn handle(&mut self, ctx: &mut Context<'_, M>, msg: M) {
        let Some(msg) = msg.unwrap() else { return };
        match msg {
            FaasMsg::Invoke { function } => self.invoke(ctx, &function, 1),
            FaasMsg::Retry { function, attempt } => {
                if let Some(bh) = &mut self.retry_bulkhead {
                    bh.release();
                }
                self.invoke(ctx, &function, attempt);
            }
            FaasMsg::Scale(delta) => self.scale(ctx, delta),
            FaasMsg::KillWarm { fraction } => self.kill_warm(ctx, fraction),
            FaasMsg::Fault(fault) => {
                self.active_faults.push(fault);
                ctx.emit_fields("faas", "fault", &[("kind", Field::Str(fault.name()))]);
            }
            FaasMsg::FaultClear(fault) => {
                if let Some(idx) = self.active_faults.iter().position(|f| *f == fault) {
                    self.active_faults.remove(idx);
                    ctx.emit_fields("faas", "fault_clear", &[("kind", Field::Str(fault.name()))]);
                }
            }
            FaasMsg::SetShedding(on) => self.shedding = on,
            FaasMsg::Report => self.report(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_simcore::codec::Json;
    use crate::platform::{FunctionSpec, KeepAlivePolicy};
    use mcs_simcore::engine::Simulation;
    use mcs_simcore::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn platform() -> FaasPlatform {
        let mut p = FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_secs(600)), 1);
        p.deploy(FunctionSpec::api_handler("api"));
        p
    }

    #[test]
    fn capacity_cap_rejects_excess_invocations() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(2);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        for _ in 0..5 {
            sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        }
        sim.run();
        let rejects = sim.trace().count("faas", "reject");
        drop(sim);
        assert_eq!(actor.invoked(), 2);
        assert_eq!(actor.rejected(), 3);
        assert_eq!(rejects, 3);
    }

    #[test]
    fn kill_warm_forces_cold_restart() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(100), id, FaasMsg::KillWarm { fraction: 1.0 });
        sim.schedule(SimTime::from_secs(200), id, FaasMsg::Invoke { function: "api".into() });
        sim.run();
        let colds: Vec<bool> = sim
            .trace()
            .select("faas", "invoke")
            .iter()
            .filter_map(|e| match e.payload.get("cold") {
                Some(Json::Bool(b)) => Some(*b),
                _ => None,
            })
            .collect();
        assert_eq!(colds, vec![true, true], "warm kill must force a second cold start");
        assert_eq!(sim.trace().count("faas", "kill_warm"), 1);
    }

    #[test]
    fn report_observer_sees_demand_and_rearms() {
        let seen: Rc<RefCell<Vec<(f64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink = Rc::clone(&seen);
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(1).with_observer(
            SimDuration::from_secs(60),
            move |_ctx, demand, supply| sink.borrow_mut().push((demand, supply)),
        );
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        sim.set_horizon(SimTime::from_secs(150));
        let id = sim.add_actor(&mut actor);
        // Two simultaneous arrivals against capacity 1: one rejected.
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(60), id, FaasMsg::Report);
        sim.run();
        // First window: peak 2 (one admitted + one over cap) + 1 reject = 3.
        // Second window (re-armed at 120 s): no traffic.
        assert_eq!(*seen.borrow(), vec![(3.0, 1), (0.0, 1)]);
    }

    #[test]
    fn partition_fault_fast_fails_and_schedules_jittered_retries() {
        use mcs_simcore::resilience::{Backoff, RetryPolicy};

        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_resilience(ResilienceConfig {
            retry: Some(RetryPolicy {
                backoff: Backoff::Fixed(SimDuration::from_secs(10)),
                max_attempts: 3,
            }),
            ..ResilienceConfig::none()
        });
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Fault(FaasFault::Partition));
        sim.schedule(SimTime::from_secs(2), id, FaasMsg::Invoke { function: "api".into() });
        sim.run();
        // Attempt 1 at 2 s, retry at 12 s, retry at 22 s, budget spent.
        assert_eq!(sim.trace().count("faas", "invoke_failed"), 3);
        assert_eq!(sim.trace().count("faas", "retry_scheduled"), 2);
        assert_eq!(sim.trace().count("faas", "retry_exhausted"), 1);
        assert_eq!(sim.trace().count("faas", "invoke"), 0);
        drop(sim);
        assert_eq!(actor.failed(), 3);
        assert_eq!(actor.invoked(), 0);
    }

    #[test]
    fn retry_succeeds_once_the_partition_clears() {
        use mcs_simcore::resilience::{Backoff, RetryPolicy};

        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_resilience(ResilienceConfig {
            retry: Some(RetryPolicy {
                backoff: Backoff::Fixed(SimDuration::from_secs(10)),
                max_attempts: 4,
            }),
            ..ResilienceConfig::none()
        });
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Fault(FaasFault::Partition));
        sim.schedule(SimTime::from_secs(2), id, FaasMsg::Invoke { function: "api".into() });
        sim.schedule(SimTime::from_secs(5), id, FaasMsg::FaultClear(FaasFault::Partition));
        sim.run();
        assert_eq!(sim.trace().count("faas", "invoke_failed"), 1, "only the first attempt");
        assert_eq!(sim.trace().count("faas", "invoke"), 1, "the 12 s retry lands");
        assert_eq!(sim.trace().count("faas", "fault"), 1);
        assert_eq!(sim.trace().count("faas", "fault_clear"), 1);
        drop(sim);
        assert_eq!(actor.invoked(), 1);
    }

    #[test]
    fn gray_failures_trip_the_per_function_breaker() {
        use mcs_simcore::resilience::BreakerConfig;

        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_resilience(ResilienceConfig {
            breaker: Some(BreakerConfig {
                failure_threshold: 3,
                open_for: SimDuration::from_secs(1_000),
                half_open_successes: 1,
            }),
            ..ResilienceConfig::none()
        });
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        // error_rate 1.0: every invocation fails deterministically.
        sim.schedule(
            SimTime::from_secs(1),
            id,
            FaasMsg::Fault(FaasFault::Gray { error_rate: 1.0 }),
        );
        for t in 2..8 {
            sim.schedule(SimTime::from_secs(t), id, FaasMsg::Invoke { function: "api".into() });
        }
        sim.run();
        // Three gray failures trip the breaker; the remaining three arrivals
        // fast-fail without touching the platform.
        let gray = sim
            .trace()
            .select("faas", "invoke_failed")
            .iter()
            .filter(|e| e.payload.get("reason") == Some(&Json::Str("gray".into())))
            .count();
        let fast = sim
            .trace()
            .select("faas", "invoke_failed")
            .iter()
            .filter(|e| e.payload.get("reason") == Some(&Json::Str("breaker_open".into())))
            .count();
        assert_eq!((gray, fast), (3, 3));
        assert_eq!(sim.trace().count("faas", "breaker"), 1, "one closed→open transition");
    }

    #[test]
    fn engaged_shedding_drops_above_the_knee() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(4).with_resilience(
            ResilienceConfig {
                shedder: Some(mcs_simcore::resilience::ShedderConfig { max_utilization: 0.5 }),
                ..ResilienceConfig::none()
            },
        );
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::SetShedding(true));
        for _ in 0..5 {
            sim.schedule(SimTime::from_secs(2), id, FaasMsg::Invoke { function: "api".into() });
        }
        sim.run();
        // Knee at 0.5 of 4 = 2 busy: two admitted, the rest shed.
        assert_eq!(sim.trace().count("faas", "invoke"), 2);
        assert_eq!(sim.trace().count("faas", "shed"), 3);
        drop(sim);
        assert_eq!(actor.shed(), 3);
        assert_eq!(actor.rejected(), 0, "shed, not capacity-rejected");
    }

    #[test]
    fn slowdown_and_timeout_turn_stragglers_into_failures() {
        use mcs_simcore::resilience::Timeout;

        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_resilience(ResilienceConfig {
            timeout: Some(Timeout::from_secs_f64(2.0)),
            ..ResilienceConfig::none()
        });
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Invoke { function: "api".into() });
        // A 1000× straggler window makes the ~20 ms handler blow a 2 s budget.
        sim.schedule(
            SimTime::from_secs(10),
            id,
            FaasMsg::Fault(FaasFault::Slowdown { factor: 1_000.0 }),
        );
        sim.schedule(SimTime::from_secs(11), id, FaasMsg::Invoke { function: "api".into() });
        sim.run();
        assert_eq!(sim.trace().count("faas", "invoke"), 1, "pre-fault invocation is fine");
        let reasons: Vec<&Json> = sim
            .trace()
            .select("faas", "invoke_failed")
            .iter()
            .filter_map(|e| e.payload.get("reason"))
            .collect();
        assert_eq!(reasons, vec![&Json::Str("timeout".into())]);
    }

    #[test]
    fn resilient_runs_are_deterministic_per_seed() {
        let run = |seed: u64| -> String {
            let mut p = FaasPlatform::new(KeepAlivePolicy::Fixed(SimDuration::from_secs(600)), seed);
            p.deploy(FunctionSpec::api_handler("api"));
            let mut actor = FaasActor::new(&mut p)
                .with_capacity(2)
                .with_resilience(ResilienceConfig::all_on());
            let mut sim: Simulation<'_, FaasMsg> = Simulation::new(seed);
            let id = sim.add_actor(&mut actor);
            sim.schedule(
                SimTime::from_secs(1),
                id,
                FaasMsg::Fault(FaasFault::Gray { error_rate: 0.5 }),
            );
            for t in 0..50 {
                sim.schedule(
                    SimTime::from_secs(2 + t / 4),
                    id,
                    FaasMsg::Invoke { function: "api".into() },
                );
            }
            sim.run();
            sim.take_trace().to_json_string()
        };
        assert_eq!(run(9), run(9), "same seed, byte-identical trace");
        assert_ne!(run(9), run(10), "different seeds diverge");
    }

    #[test]
    fn scale_message_moves_the_cap() {
        let mut p = platform();
        let mut actor = FaasActor::new(&mut p).with_capacity(2);
        let mut sim: Simulation<'_, FaasMsg> = Simulation::new(0);
        let id = sim.add_actor(&mut actor);
        sim.schedule(SimTime::from_secs(1), id, FaasMsg::Scale(3));
        sim.schedule(SimTime::from_secs(2), id, FaasMsg::Scale(-10));
        sim.run();
        drop(sim);
        // 2 + 3 = 5, then floored at 1.
        assert_eq!(actor.capacity(), Some(1));
    }
}
