#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and lint cleanly
# with no network access — proving the zero-dependency policy holds.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Determinism gate: the composed-ecosystem experiment must render a
# byte-identical report across two runs at the same seed.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
./target/release/ecosystem_composed 42 > "$tmpdir/run1.txt"
./target/release/ecosystem_composed 42 > "$tmpdir/run2.txt"
diff "$tmpdir/run1.txt" "$tmpdir/run2.txt"

echo "verify: OK (offline build + tests + clippy + same-seed ecosystem diff)"
