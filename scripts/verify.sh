#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and lint cleanly
# with no network access — proving the zero-dependency policy holds.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Determinism gate: the composed-ecosystem, resilience-ablation, and
# network-contention experiments must render byte-identical reports across
# two runs at the same seed — and across parallel-sweep widths, since
# mcs-simcore::par merges fan-out results by input index, never by
# completion order.
for exp in ecosystem_composed ecosystem_full resilience_ablation locality_contention chaos_sweep scale_stress dag_portfolio; do
    MCS_PAR_WORKERS=1 "./target/release/$exp" 42 > "$tmpdir/${exp}_w1.txt"
    MCS_PAR_WORKERS=4 "./target/release/$exp" 42 > "$tmpdir/${exp}_w4.txt"
    MCS_PAR_WORKERS=4 "./target/release/$exp" 42 > "$tmpdir/${exp}_w4b.txt"
    diff "$tmpdir/${exp}_w1.txt" "$tmpdir/${exp}_w4.txt"
    diff "$tmpdir/${exp}_w4.txt" "$tmpdir/${exp}_w4b.txt"
done

# Invariant gate: every built-in chaos invariant must hold on the golden
# default-config trace (the same composition scenario_golden.rs pins).
"./target/release/chaos_sweep" --check-invariants

# Perf-baseline gate: a 2-sample smoke run of the tracked benchmarks must
# produce a JSON artifact that the in-house codec parses back with a sane
# shape, and the committed BENCH_*.json series must stay valid too.
MCS_BENCH_SAMPLES=2 MCS_BENCH_WARMUP_MS=0 \
    "./target/release/perf_baseline" --json "$tmpdir/bench_smoke.json"
"./target/release/perf_baseline" --check "$tmpdir/bench_smoke.json"
for baseline in BENCH_4.json BENCH_7.json BENCH_9.json BENCH_10.json; do
    if [ -f "$baseline" ]; then
        "./target/release/perf_baseline" --check "$baseline"
    fi
done

# Allow-lint gate: the engine-migrated crates stay clean — no new `#[allow]`
# escapes into their sources (the BSP stepper carries the single
# pre-existing `too_many_arguments` exception).
allow_budget=1
allow_count="$(grep -rE '#!?\[allow\(' crates/bigdata/src crates/graph/src crates/gaming/src crates/core/src | wc -l)"
if [ "$allow_count" -gt "$allow_budget" ]; then
    echo "verify: FAIL — $allow_count #[allow] attributes in migrated crates (budget $allow_budget)" >&2
    grep -rnE '#!?\[allow\(' crates/bigdata/src crates/graph/src crates/gaming/src crates/core/src >&2
    exit 1
fi

echo "verify: OK (offline build + tests + clippy + par-aware determinism diffs + invariant gate + bench smoke + allow-lint budget)"
