#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and lint cleanly
# with no network access — proving the zero-dependency policy holds.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "verify: OK (offline build + tests + clippy)"
