#!/usr/bin/env bash
# Hermetic verification: the workspace must build, test, and lint cleanly
# with no network access — proving the zero-dependency policy holds.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Determinism gate: the composed-ecosystem and resilience-ablation
# experiments must render byte-identical reports across two runs at the
# same seed.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
for exp in ecosystem_composed resilience_ablation; do
    "./target/release/$exp" 42 > "$tmpdir/${exp}1.txt"
    "./target/release/$exp" 42 > "$tmpdir/${exp}2.txt"
    diff "$tmpdir/${exp}1.txt" "$tmpdir/${exp}2.txt"
done

echo "verify: OK (offline build + tests + clippy + same-seed experiment diffs)"
